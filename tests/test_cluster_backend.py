"""ClusterBackend: hash ring, parity, lifecycle, chaos, refresh, serving.

In-process workers (``serve_background``) keep the parity and lifecycle
tests fast; the chaos tests use real worker *processes* via
:func:`spawn_local_workers` so SIGKILL means SIGKILL.  Set
``REPRO_MP_CONTEXT=spawn`` (the CI spawn leg does) to run the
process-fleet tests under that start method.
"""

import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro.engine import (
    ClusterBackend,
    ClusterConfig,
    ClusterWorker,
    LabelingEngine,
    WorkerDied,
    spawn_local_workers,
)
from repro.engine.cluster import HashRing, _parse_address
from repro.scheduling.qgreedy import (
    AgentPredictor,
    OraclePredictor,
    QValuePredictor,
)
from repro.serving import LabelingService
from repro.zoo.oracle import GroundTruth


@pytest.fixture(scope="module")
def predictor(trained, zoo):
    return AgentPredictor(trained.agent, len(zoo))


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:12]


@pytest.fixture(scope="module")
def inproc_addresses():
    """Three in-process socket workers shared by the fast tests."""
    workers = [ClusterWorker().serve_background() for _ in range(3)]
    yield tuple(worker.address for worker in workers)
    for worker in workers:
        worker.stop()


def engine_for(zoo, predictor, world_config, backend):
    return LabelingEngine(zoo, predictor, world_config, backend=backend)


def mp_ctx():
    """The ``REPRO_MP_CONTEXT`` multiprocessing context override, if any."""
    method = os.environ.get("REPRO_MP_CONTEXT")
    return multiprocessing.get_context(method) if method else None


def assert_parity(got, ref):
    assert len(got) == len(ref)
    for r, g in zip(ref, got):
        assert g.item_id == r.item_id
        assert g.trace.executions == r.trace.executions
        assert g.trace.total_value == r.trace.total_value


#: All three paper regimes plus the capped q-greedy variant.
REGIMES = (
    {},
    {"max_models": 4},
    {"deadline": 0.35},
    {"deadline": 0.5, "memory_budget": 8000.0},
)


class PoisonPredictor(QValuePredictor):
    """Picklable predictor that raises on one designated item."""

    def __init__(self, n_models: int, poison: str | None = None):
        self.n_models = n_models
        self.poison = poison

    def predict(self, state):
        if state.item_id == self.poison:
            raise RuntimeError(f"poisoned item {state.item_id}")
        return np.zeros(self.n_models)


class TestHashRing:
    def test_lookup_is_deterministic_and_total(self):
        ring = HashRing(("a:1", "b:2", "c:3"))
        keys = [f"item-{i}" for i in range(200)]
        first = {key: ring.lookup(key) for key in keys}
        assert set(first.values()) == {"a:1", "b:2", "c:3"}  # all nodes used
        assert first == {key: ring.lookup(key) for key in keys}

    def test_exclusion_moves_only_the_excluded_nodes_keys(self):
        ring = HashRing(("a:1", "b:2", "c:3"))
        keys = [f"item-{i}" for i in range(200)]
        before = {key: ring.lookup(key) for key in keys}
        after = {key: ring.lookup(key, exclude={"b:2"}) for key in keys}
        for key in keys:
            if before[key] != "b:2":
                assert after[key] == before[key]  # survivors keep their keys
            else:
                assert after[key] != "b:2"

    def test_all_excluded_raises(self):
        ring = HashRing(("a:1",))
        with pytest.raises(RuntimeError, match="no live cluster workers"):
            ring.lookup("key", exclude={"a:1"})

    def test_validation_and_dedupe(self):
        with pytest.raises(ValueError, match="at least one node"):
            HashRing(())
        with pytest.raises(ValueError, match="replicas"):
            HashRing(("a:1",), replicas=0)
        assert HashRing(("a:1", "b:2", "a:1")).nodes == ("a:1", "b:2")


class TestAddresses:
    @pytest.mark.parametrize("bad", ["nocolon", ":9000", "host:", "host:x"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError, match="host:port"):
            _parse_address(bad)

    def test_valid(self):
        assert _parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_backend_validates_eagerly(self):
        with pytest.raises(ValueError, match="host:port"):
            ClusterBackend(workers=("nocolon",))
        with pytest.raises(ValueError, match="needs workers"):
            ClusterBackend()


class TestClusterParity:
    """Cluster traces must equal SerialBackend's for every sharding."""

    @pytest.mark.parametrize(
        "n_workers,chunk_size,vectorized",
        [(1, None, True), (3, None, True), (3, 2, True), (2, 5, False)],
        ids=["w1", "w3", "w3-chunk2", "w2-chunk5-loop"],
    )
    def test_trace_identical_to_serial_all_regimes(
        self,
        zoo,
        world_config,
        predictor,
        truth,
        items,
        inproc_addresses,
        n_workers,
        chunk_size,
        vectorized,
    ):
        serial = engine_for(zoo, predictor, world_config, "serial")
        backend = ClusterBackend(
            workers=inproc_addresses[:n_workers],
            chunk_size=chunk_size,
            vectorized=vectorized,
        )
        with backend:
            cluster = engine_for(zoo, predictor, world_config, backend)
            for regime in REGIMES:
                ref = serial.label_batch(items, truth=truth, **regime)
                got = cluster.label_batch(items, truth=truth, **regime)
                assert_parity(got, ref)

    def test_post_snapshot_records_ship_as_chunk_deltas(
        self, zoo, world_config, predictor, truth, items, inproc_addresses
    ):
        # The snapshot is captured at the first job, so a later job over
        # items the snapshot never saw must carry their records with each
        # chunk — and still match the serial run (the world is
        # deterministic per item id).
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        shared = GroundTruth(zoo, [], world_config)
        with ClusterBackend(workers=inproc_addresses[:2]) as backend:
            engine = engine_for(zoo, predictor, world_config, backend)
            first = engine.label_batch(items[:6], truth=shared)
            second = engine.label_batch(items[6:], truth=shared)
            transport = backend.chunk_stats["transport"]
        for r, g in zip(ref, first + second):
            assert g.trace.executions == r.trace.executions
        deltas = transport.get("delta_codec", 0) + transport.get("delta_pickle", 0)
        assert deltas > 0  # the post-snapshot records actually shipped

    def test_oracle_predictor_crosses_the_wire(
        self, zoo, world_config, truth, items, inproc_addresses
    ):
        oracle = OraclePredictor(truth)
        ref = engine_for(zoo, oracle, world_config, "serial").label_batch(
            items[:6], truth=truth
        )
        with ClusterBackend(workers=inproc_addresses[:2]) as backend:
            got = engine_for(zoo, oracle, world_config, backend).label_batch(
                items[:6], truth=truth
            )
        assert_parity(got, ref)

    def test_single_item_takes_the_local_path(
        self, zoo, world_config, predictor, truth, items, inproc_addresses
    ):
        # No connect, no snapshot ship for singleton jobs.
        with ClusterBackend(workers=inproc_addresses) as backend:
            engine = engine_for(zoo, predictor, world_config, backend)
            [result] = engine.label_batch(items[:1], truth=truth)
            assert result.item_id == items[0].item_id
            assert backend._links == {}
            assert backend.dispatch_counts == {"local": 1}


class TestClusterLifecycle:
    def test_snapshot_ships_once_and_connections_reuse(
        self, zoo, world_config, predictor, truth, items, inproc_addresses
    ):
        with ClusterBackend(workers=inproc_addresses) as backend:
            engine = engine_for(zoo, predictor, world_config, backend)
            engine.label_batch(items, truth=truth)
            links_after_first = dict(backend._links)
            engine.label_batch(items, deadline=0.4, truth=truth)
            assert backend._links == links_after_first  # no reconnect
            stats = backend.cluster_stats
            assert stats["snapshot_ships"] == len(inproc_addresses)
            assert all(w["alive"] for w in stats["workers"].values())
            assert sum(backend.dispatch_counts.values()) == 2 * len(items)

    def test_world_switch_reships_snapshots(
        self, zoo, world_config, trained, truth, items, inproc_addresses
    ):
        first = AgentPredictor(trained.agent, len(zoo))
        second = AgentPredictor(trained.agent, len(zoo))
        with ClusterBackend(workers=inproc_addresses[:2]) as backend:
            engine_for(zoo, first, world_config, backend).label_batch(
                items[:4], truth=truth
            )
            engine_for(zoo, second, world_config, backend).label_batch(
                items[:4], truth=truth
            )
            assert backend.cluster_stats["snapshot_ships"] == 4  # 2 workers x 2

    def test_world_switch_while_in_flight_raises(
        self, zoo, world_config, trained, truth, items, inproc_addresses
    ):
        first = AgentPredictor(trained.agent, len(zoo))
        second = AgentPredictor(trained.agent, len(zoo))
        with ClusterBackend(workers=inproc_addresses[:2]) as backend:
            engine_for(zoo, first, world_config, backend).label_batch(
                items[:4], truth=truth
            )
            backend._active += 1  # another thread mid-run()
            try:
                with pytest.raises(RuntimeError, match="world-affine"):
                    engine_for(zoo, second, world_config, backend).label_batch(
                        items[:4], truth=truth
                    )
            finally:
                backend._active -= 1
            # same-world traffic was never blocked
            engine_for(zoo, first, world_config, backend).label_batch(
                items[:4], truth=truth
            )

    def test_unreachable_worker_is_skipped_with_survivors(
        self, zoo, world_config, predictor, truth, items, inproc_addresses
    ):
        # Port 1 refuses connections; the job lands on the live workers.
        addresses = inproc_addresses[:2] + ("127.0.0.1:1",)
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        with ClusterBackend(workers=addresses, connect_timeout=2.0) as backend:
            got = engine_for(zoo, predictor, world_config, backend).label_batch(
                items, truth=truth
            )
            stats = backend.cluster_stats["workers"]
            assert not stats["127.0.0.1:1"]["alive"]
        assert_parity(got, ref)

    def test_no_reachable_workers_raises(
        self, zoo, world_config, predictor, truth, items
    ):
        with ClusterBackend(
            workers=("127.0.0.1:1",), connect_timeout=2.0
        ) as backend:
            engine = engine_for(zoo, predictor, world_config, backend)
            with pytest.raises(RuntimeError, match="no live cluster workers"):
                engine.label_batch(items, truth=truth)

    def test_close_then_reuse_reconnects(
        self, zoo, world_config, predictor, truth, items, inproc_addresses
    ):
        backend = ClusterBackend(workers=inproc_addresses[:2])
        engine = engine_for(zoo, predictor, world_config, backend)
        engine.label_batch(items[:4], truth=truth)
        backend.close()
        assert backend._links == {}
        backend.close()  # idempotent
        engine.label_batch(items[:4], truth=truth)  # reconnect + re-ship
        assert backend.cluster_stats["snapshot_ships"] == 4
        backend.close()


class TestRefresh:
    def test_refresh_before_any_job_raises(self, inproc_addresses, predictor):
        with ClusterBackend(workers=inproc_addresses[:1]) as backend:
            with pytest.raises(RuntimeError, match="before any job"):
                backend.refresh(predictor)

    def test_refresh_while_in_flight_raises(
        self, zoo, world_config, predictor, truth, items, inproc_addresses
    ):
        with ClusterBackend(workers=inproc_addresses[:1]) as backend:
            engine_for(zoo, predictor, world_config, backend).label_batch(
                items[:4], truth=truth
            )
            backend._active += 1
            try:
                with pytest.raises(RuntimeError, match="in flight"):
                    backend.refresh(predictor)
            finally:
                backend._active -= 1

    def test_refresh_hot_swaps_without_reshipping(
        self, zoo, world_config, trained, truth, items, inproc_addresses
    ):
        # New predictor object, same world otherwise: refresh() sends one
        # control frame per worker instead of tearing down connections,
        # and the next job runs against the refreshed weights in parity
        # with a serial run of the new predictor.
        old = AgentPredictor(trained.agent, len(zoo))
        new = AgentPredictor(trained.agent, len(zoo))
        ref = engine_for(zoo, new, world_config, "serial").label_batch(
            items, truth=truth
        )
        with ClusterBackend(workers=inproc_addresses) as backend:
            engine_for(zoo, old, world_config, backend).label_batch(
                items, truth=truth
            )
            assert backend.refresh(new) == len(inproc_addresses)
            got = engine_for(zoo, new, world_config, backend).label_batch(
                items, truth=truth
            )
            stats = backend.cluster_stats
            assert stats["refreshes"] == 1
            # world re-anchored on the new predictor: no snapshot re-ship
            assert stats["snapshot_ships"] == len(inproc_addresses)
        assert_parity(got, ref)


class TestChaos:
    """Real worker processes, real SIGKILL."""

    def test_chunk_error_fails_the_job_not_the_cluster(
        self, zoo, world_config, truth, items, inproc_addresses
    ):
        poison = PoisonPredictor(len(zoo), poison=items[1].item_id)
        with ClusterBackend(
            workers=inproc_addresses[:2], chunk_size=2
        ) as backend:
            engine = engine_for(zoo, poison, world_config, backend)
            with pytest.raises(RuntimeError, match="poisoned item"):
                engine.label_batch(items[:6], truth=truth)
            # The cluster survived: a job avoiding the poison runs.
            clean = engine.label_batch(items[2:6], truth=truth)
            assert [r.item_id for r in clean] == [i.item_id for i in items[2:6]]

    def test_sigkill_mid_job_redispatches_with_identical_trace(
        self, zoo, world_config, predictor, truth, items
    ):
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        with spawn_local_workers(
            3, mp_context=mp_ctx(), delay_per_item=0.05
        ) as fleet:
            with ClusterBackend(workers=fleet.addresses, chunk_size=2) as backend:
                engine = engine_for(zoo, predictor, world_config, backend)
                engine.label_batch(items, truth=truth)  # warm: ship world
                # Kill the worker that owned the most items in the warm
                # run — identical items and chunking mean it owns chunks
                # of the next job too, and 0.05s/item of delay keeps it
                # busy well past the kill.
                counts = backend.dispatch_counts
                victim = max(
                    range(3), key=lambda i: counts.get(fleet.addresses[i], 0)
                )
                timer = threading.Timer(0.08, fleet.kill, args=(victim,))
                timer.start()
                try:
                    got = engine.label_batch(items, truth=truth)
                finally:
                    timer.cancel()
                stats = backend.cluster_stats
                assert stats["redispatched"] >= 1
                assert not stats["workers"][fleet.addresses[victim]]["alive"]
        assert_parity(got, ref)

    def test_dead_worker_rejoins_with_fresh_snapshot(
        self, zoo, world_config, predictor, truth, items
    ):
        with spawn_local_workers(2, mp_context=mp_ctx()) as fleet:
            with ClusterBackend(workers=fleet.addresses, chunk_size=3) as backend:
                engine = engine_for(zoo, predictor, world_config, backend)
                ref = engine.label_batch(items, truth=truth)
                fleet.kill(0)
                # Job while one worker is down: survivors cover its chunks.
                down = engine.label_batch(items, truth=truth)
                assert_parity(down, ref)
                # Same port, fresh process: the next job re-ships the
                # snapshot to the rejoined worker and uses it again.
                fleet.restart(0)
                back = engine.label_batch(items, truth=truth)
                assert_parity(back, ref)
                stats = backend.cluster_stats
                assert stats["workers"][fleet.addresses[0]]["snapshot_ships"] == 2
                assert all(w["alive"] for w in stats["workers"].values())

    def test_worker_died_is_a_connection_error(self):
        exc = WorkerDied("10.0.0.7:9000", "mid-frame")
        assert isinstance(exc, ConnectionError)
        assert exc.address == "10.0.0.7:9000"
        assert "10.0.0.7:9000" in str(exc)


class TestServiceCluster:
    def test_service_end_to_end_owns_and_closes_the_fleet(
        self, zoo, world_config, predictor, truth, items
    ):
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        engine = engine_for(zoo, predictor, world_config, "batched")
        service = LabelingService(
            engine,
            backend=ClusterConfig(local_workers=2, mp_context=mp_ctx()),
            batch_size=4,
            max_wait=0.005,
            workers=2,
            truth=truth,
        )
        assert isinstance(service.engine.backend, ClusterBackend)
        with service:
            results = [f.result(timeout=60) for f in service.submit_many(items)]
            service.drain()
        assert_parity(results, ref)
        snapshot = service.snapshot()
        assert snapshot.counters["failed"] == 0
        # Per-worker dispatch counters name the socket workers.
        assert any(":" in worker for worker in snapshot.workers)
        # Shutdown closed the service-owned backend: links and fleet gone.
        assert service.engine.backend._links == {}
        assert service.engine.backend._fleet is None

    def test_lazy_local_fleet_spawns_on_first_job(
        self, zoo, world_config, predictor, truth, items
    ):
        with ClusterBackend(local_workers=2, mp_context=mp_ctx()) as backend:
            assert backend._fleet is None  # nothing spawned at config time
            engine = engine_for(zoo, predictor, world_config, backend)
            got = engine.label_batch(items, truth=truth)
            assert backend._fleet is not None
            assert len(backend._fleet.addresses) == 2
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        assert_parity(got, ref)


class TestDialRetry:
    """Worker dials retry transient refusals with jittered backoff."""

    def retrying_backend(self, monkeypatch, failures: int, **kwargs):
        kwargs.setdefault("connect_attempts", 3)
        kwargs.setdefault("connect_backoff", 0.2)
        backend = ClusterBackend(workers=("host:1",), **kwargs)
        attempts, sleeps = [], []
        sentinel = object()

        def fake_link(address, timeout):
            attempts.append((address, timeout))
            if len(attempts) <= failures:
                raise ConnectionRefusedError("worker still starting")
            return sentinel

        monkeypatch.setattr("repro.engine.cluster._Link", fake_link)
        monkeypatch.setattr("repro.engine.cluster.time.sleep", sleeps.append)
        return backend, attempts, sleeps, sentinel

    def test_transient_refusal_retries_then_connects(self, monkeypatch):
        backend, attempts, sleeps, sentinel = self.retrying_backend(
            monkeypatch, failures=2
        )
        assert backend._dial("host:1") is sentinel
        assert len(attempts) == 3
        # jittered exponential backoff: base*[0.5,1.5], then doubled
        assert len(sleeps) == 2
        assert 0.1 <= sleeps[0] <= 0.3
        assert 0.2 <= sleeps[1] <= 0.6

    def test_exhausted_attempts_raise_the_last_error(self, monkeypatch):
        backend, attempts, sleeps, _ = self.retrying_backend(
            monkeypatch, failures=99
        )
        with pytest.raises(ConnectionRefusedError):
            backend._dial("host:1")
        assert len(attempts) == 3
        assert len(sleeps) == 2  # no sleep after the final failure

    def test_single_attempt_never_sleeps(self, monkeypatch):
        backend, attempts, sleeps, _ = self.retrying_backend(
            monkeypatch, failures=99, connect_attempts=1
        )
        with pytest.raises(ConnectionRefusedError):
            backend._dial("host:1")
        assert (len(attempts), len(sleeps)) == (1, 0)

    def test_config_fields_flow_through_build_and_validate(self):
        config = ClusterConfig(
            workers=("host:1",), connect_attempts=5, connect_backoff=0.01
        )
        backend = config.build()
        assert (backend.connect_attempts, backend.connect_backoff) == (5, 0.01)
        backend.close()
        with pytest.raises(ValueError, match="connect_attempts"):
            ClusterConfig(workers=("host:1",), connect_attempts=0)
        with pytest.raises(ValueError, match="connect_backoff"):
            ClusterConfig(workers=("host:1",), connect_backoff=-0.1)
        with pytest.raises(ValueError, match="connect_attempts"):
            ClusterBackend(workers=("host:1",), connect_attempts=0)
