"""Configuration presets and validation."""

import pytest

from repro.config import (
    TrainConfig,
    WorldConfig,
    bench_scale,
    get_scale,
    paper_scale,
    smoke_scale,
)


class TestWorldConfig:
    def test_defaults_match_paper(self):
        config = WorldConfig()
        assert config.vocab_scale == "full"
        assert config.zoo_total_time == pytest.approx(5.16)
        assert config.valuable_confidence == 0.5

    def test_with_seed(self):
        config = WorldConfig().with_seed(42)
        assert config.seed == 42
        assert config.vocab_scale == "full"


class TestTrainConfig:
    def test_with_override(self):
        config = TrainConfig().with_(episodes=7, gamma=0.0)
        assert config.episodes == 7
        assert config.gamma == 0.0
        # untouched fields keep defaults
        assert config.hidden_size == TrainConfig().hidden_size

    def test_default_gamma_near_myopic(self):
        """The gamma ablation motivated this default; guard it."""
        assert TrainConfig().gamma <= 0.5


class TestScales:
    def test_three_presets(self):
        for name, factory in (
            ("smoke", smoke_scale),
            ("bench", bench_scale),
            ("paper", paper_scale),
        ):
            scale = factory()
            assert scale.name == name
            assert get_scale(name).name == name

    def test_smoke_is_mini_world(self):
        assert smoke_scale().world.vocab_scale == "mini"
        assert not smoke_scale().is_full_world

    def test_bench_and_paper_are_full_world(self):
        assert bench_scale().is_full_world
        assert paper_scale().is_full_world

    def test_paper_trains_longer_than_bench(self):
        assert paper_scale().train.episodes > bench_scale().train.episodes
        assert paper_scale().items_per_dataset > bench_scale().items_per_dataset

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("galactic")

    def test_seed_threading(self):
        assert get_scale("bench", seed=7).world.seed == 7
