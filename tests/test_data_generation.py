"""Data substrate: determinism, profile effects, content coherence."""

import pytest

from repro.data.correlations import build_scene_affinities
from repro.data.datasets import generate_dataset, train_test_split
from repro.data.generator import WorldGenerator
from repro.data.profiles import DATASET_PROFILES, DatasetProfile
from repro.data.streams import chunked_stream, iid_stream


class TestDeterminism:
    def test_same_seed_same_content(self, space, world_config):
        g1 = WorldGenerator(space, world_config)
        g2 = WorldGenerator(space, world_config)
        for i in range(20):
            a = g1.generate_content("mscoco2017", i)
            b = g2.generate_content("mscoco2017", i)
            assert a == b

    def test_different_seed_differs(self, space, world_config):
        g1 = WorldGenerator(space, world_config)
        g2 = WorldGenerator(space, world_config.with_seed(999))
        diffs = sum(
            g1.generate_content("mscoco2017", i) != g2.generate_content("mscoco2017", i)
            for i in range(20)
        )
        assert diffs > 10

    def test_items_independent_of_dataset_size(self, space, world_config):
        """Item i is identical whether we generate 10 or 100 items."""
        d10 = generate_dataset(space, world_config, "voc2012", 10)
        d100 = generate_dataset(space, world_config, "voc2012", 100)
        for i in range(10):
            assert d10[i].content == d100[i].content

    def test_datasets_differ_from_each_other(self, space, world_config):
        g = WorldGenerator(space, world_config)
        same = sum(
            g.generate_content("mscoco2017", i) == g.generate_content("places365", i)
            for i in range(20)
        )
        assert same <= 2


class TestProfiles:
    def test_all_five_datasets_exist(self):
        assert set(DATASET_PROFILES) == {
            "mscoco2017",
            "places365",
            "mirflickr25",
            "stanford40",
            "voc2012",
        }

    def test_stanford40_has_most_actions(self, space, world_config):
        g = WorldGenerator(space, world_config)
        counts = {}
        for name in ("stanford40", "places365"):
            items = [g.generate_content(name, i) for i in range(300)]
            counts[name] = sum(1 for c in items if c.action is not None)
        assert counts["stanford40"] > counts["places365"] * 1.5

    def test_person_rates_follow_profile(self, space, world_config):
        g = WorldGenerator(space, world_config)
        rates = {}
        for name in ("stanford40", "places365"):
            items = [g.generate_content(name, i) for i in range(300)]
            rates[name] = sum(1 for c in items if c.has_person) / len(items)
        assert rates["stanford40"] > rates["places365"]

    def test_invalid_profile_params_rejected(self):
        with pytest.raises(ValueError):
            DatasetProfile(
                name="bad",
                mean_objects=-1.0,
                person_boost=1.0,
                face_given_person=0.5,
                action_given_person=0.5,
                dog_prob=0.1,
                indoor_bias=1.0,
                sport_bias=1.0,
                scene_strength_mean=0.5,
                object_strength_mean=0.5,
            )
        with pytest.raises(ValueError):
            DatasetProfile(
                name="bad",
                mean_objects=1.0,
                person_boost=1.0,
                face_given_person=1.5,
                action_given_person=0.5,
                dog_prob=0.1,
                indoor_bias=1.0,
                sport_bias=1.0,
                scene_strength_mean=0.5,
                object_strength_mean=0.5,
            )

    def test_unknown_dataset_rejected(self, space, world_config):
        with pytest.raises(ValueError, match="unknown dataset"):
            generate_dataset(space, world_config, "imagenet", 5)


class TestContentCoherence:
    def test_persons_imply_person_object(self, space, world_config):
        g = WorldGenerator(space, world_config)
        person_obj = space.vocabulary.labels_for("object_detection").index("person")
        for i in range(100):
            content = g.generate_content("mirflickr25", i)
            if content.has_person:
                assert person_obj in content.objects

    def test_dog_breed_implies_dog_object(self, space, world_config):
        g = WorldGenerator(space, world_config)
        dog_obj = space.vocabulary.labels_for("object_detection").index("dog")
        found = 0
        for i in range(400):
            content = g.generate_content("voc2012", i)
            if content.dog_breed is not None:
                found += 1
                assert dog_obj in content.objects
                assert content.dog_strength > 0
        assert found > 0

    def test_action_requires_person(self, space, world_config):
        g = WorldGenerator(space, world_config)
        for i in range(150):
            content = g.generate_content("stanford40", i)
            if content.action is not None:
                assert content.has_person

    def test_face_strength_zero_when_invisible(self, space, world_config):
        g = WorldGenerator(space, world_config)
        for i in range(100):
            for person in g.generate_content("mscoco2017", i).persons:
                if not person.face_visible:
                    assert person.face_strength == 0.0
                    assert person.emotion is None

    def test_strengths_in_unit_interval(self, space, world_config):
        g = WorldGenerator(space, world_config)
        for i in range(80):
            content = g.generate_content("mscoco2017", i)
            assert 0 < content.scene_strength <= 1
            for strength in content.objects.values():
                assert 0 < strength <= 1


class TestAffinities:
    def test_indoor_scenes_prefer_household_objects(self, space, world_config):
        aff = build_scene_affinities(space)
        vocab = space.vocabulary
        objects = vocab.labels_for("object_detection")
        household = [i for i, o in enumerate(objects) if o in vocab.household_objects]
        animals = [i for i, o in enumerate(objects) if o in vocab.animal_objects]
        if not household or not animals:
            pytest.skip("mini world lacks one of the groups")
        indoor_rows = aff.object_affinity[aff.indoor]
        outdoor_rows = aff.object_affinity[~aff.indoor]
        assert indoor_rows[:, household].mean() > outdoor_rows[:, household].mean()
        assert indoor_rows[:, animals].mean() < outdoor_rows[:, animals].mean()


class TestSplitsAndStreams:
    def test_split_ratio(self, space, world_config):
        ds = generate_dataset(space, world_config, "mscoco2017", 100)
        train, test = train_test_split(ds)
        assert len(train) == 20
        assert len(test) == 80
        ids = {i.item_id for i in train} | {i.item_id for i in test}
        assert len(ids) == 100

    def test_split_bad_fraction(self, space, world_config):
        ds = generate_dataset(space, world_config, "mscoco2017", 10)
        with pytest.raises(ValueError):
            train_test_split(ds, train_fraction=0.0)

    def test_iid_stream_matches_dataset(self, space, world_config):
        items = list(iid_stream(space, world_config, "voc2012", 5))
        ds = generate_dataset(space, world_config, "voc2012", 5)
        for stream_item, ds_item in zip(items, ds):
            assert stream_item.content == ds_item.content

    def test_chunked_stream_shares_scene_within_chunk(self, space, world_config):
        stream = list(
            chunked_stream(space, world_config, "mscoco2017", n_chunks=5,
                           chunk_length=6, seed=3)
        )
        assert len(stream) == 30
        by_chunk = {}
        for ci in stream:
            by_chunk.setdefault(ci.chunk_id, []).append(ci)
        for chunk_items in by_chunk.values():
            scenes = {c.item.content.scene for c in chunk_items}
            assert len(scenes) == 1  # anchor scene persists within the chunk

    def test_chunked_stream_positions(self, space, world_config):
        stream = list(
            chunked_stream(space, world_config, "mscoco2017", 2, 4, seed=1)
        )
        positions = [c.position for c in stream]
        assert positions == [0, 1, 2, 3, 0, 1, 2, 3]
        assert stream[0].is_chunk_start and not stream[1].is_chunk_start

    def test_chunked_stream_validates_length(self, space, world_config):
        with pytest.raises(ValueError):
            list(chunked_stream(space, world_config, "mscoco2017", 1, 0))

    def test_dataset_sample_and_subset(self, space, world_config):
        ds = generate_dataset(space, world_config, "mscoco2017", 30)
        sample = ds.sample(10, seed=4)
        assert len(sample) == 10
        assert len({i.item_id for i in sample}) == 10
        sub = ds.subset([0, 2, 4])
        assert [i.index for i in sub] == [0, 2, 4]
