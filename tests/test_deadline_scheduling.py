"""Algorithm 1 + deadline baselines: budget compliance and quality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.deadline import (
    CostQGreedyScheduler,
    QGreedyDeadlineScheduler,
    RandomDeadlineScheduler,
    RelaxedOptimalDeadline,
)
from repro.scheduling.qgreedy import AgentPredictor, OraclePredictor


@pytest.fixture(scope="module")
def predictor(trained, zoo):
    return AgentPredictor(trained.agent, len(zoo))


budgets = st.floats(min_value=0.0, max_value=1.2)


class TestAlgorithm1:
    @settings(max_examples=25, deadline=None)
    @given(budget=budgets, item=st.integers(0, 29))
    def test_never_exceeds_budget(self, truth, predictor, test_item_ids, budget, item):
        scheduler = CostQGreedyScheduler(predictor)
        trace = scheduler.schedule(truth, test_item_ids[item % len(test_item_ids)], budget)
        assert trace.serial_time <= budget + 1e-9
        assert trace.makespan <= budget + 1e-9

    def test_zero_budget_executes_nothing(self, truth, predictor, test_item_ids):
        trace = CostQGreedyScheduler(predictor).schedule(truth, test_item_ids[0], 0.0)
        assert trace.n_executed == 0
        assert trace.value_obtained == 0.0

    def test_huge_budget_executes_everything(
        self, truth, predictor, test_item_ids, zoo
    ):
        trace = CostQGreedyScheduler(predictor).schedule(
            truth, test_item_ids[0], zoo.total_time * 2
        )
        assert trace.n_executed == len(zoo)
        assert trace.recall == pytest.approx(1.0)

    def test_filters_unaffordable_models(self, truth, predictor, test_item_ids, zoo):
        """With a budget below the cheapest model nothing runs."""
        cheapest = float(zoo.times.min())
        trace = CostQGreedyScheduler(predictor).schedule(
            truth, test_item_ids[0], cheapest * 0.9
        )
        assert trace.n_executed == 0

    def test_negative_budget_rejected(self, truth, predictor, test_item_ids):
        with pytest.raises(ValueError):
            CostQGreedyScheduler(predictor).schedule(truth, test_item_ids[0], -1.0)

    def test_beats_random_under_tight_budget(self, truth, predictor, test_item_ids):
        budget = 0.25
        ours = np.mean(
            [
                CostQGreedyScheduler(predictor)
                .schedule(truth, i, budget)
                .recall_by(budget)
                for i in test_item_ids
            ]
        )
        rand = np.mean(
            [
                RandomDeadlineScheduler(seed=3)
                .schedule(truth, i, budget)
                .recall_by(budget)
                for i in test_item_ids
            ]
        )
        assert ours > rand

    def test_oracle_predictor_at_least_agent(self, truth, trained, test_item_ids, zoo):
        """A perfect predictor can't do worse on average."""
        budget = 0.3
        agent_pred = AgentPredictor(trained.agent, len(zoo))
        oracle = OraclePredictor(truth)
        agent_recall = np.mean(
            [
                CostQGreedyScheduler(agent_pred)
                .schedule(truth, i, budget)
                .recall_by(budget)
                for i in test_item_ids
            ]
        )
        oracle_recall = np.mean(
            [
                CostQGreedyScheduler(oracle)
                .schedule(truth, i, budget)
                .recall_by(budget)
                for i in test_item_ids
            ]
        )
        assert oracle_recall >= agent_recall - 0.02


class TestQGreedyDeadline:
    def test_stops_at_deadline(self, truth, predictor, test_item_ids, zoo):
        budget = 0.3
        trace = QGreedyDeadlineScheduler(predictor).schedule(
            truth, test_item_ids[0], budget
        )
        started_before = [e for e in trace.executions if e.start_time < budget]
        assert len(started_before) == trace.n_executed
        # it may overshoot by at most one model
        assert trace.makespan <= budget + zoo.times.max() + 1e-9

    def test_value_by_deadline_excludes_overshoot(
        self, truth, predictor, test_item_ids
    ):
        budget = 0.3
        trace = QGreedyDeadlineScheduler(predictor).schedule(
            truth, test_item_ids[0], budget
        )
        counted = trace.value_by(budget)
        assert counted <= trace.value_obtained + 1e-9


class TestRelaxedOptimal:
    @settings(max_examples=20, deadline=None)
    @given(budget=budgets, item=st.integers(0, 19))
    def test_upper_bounds_algorithm1(
        self, truth, predictor, test_item_ids, budget, item
    ):
        """optimal* must dominate any feasible policy (§V-C)."""
        item_id = test_item_ids[item % len(test_item_ids)]
        star = RelaxedOptimalDeadline().value(truth, item_id, budget)
        ours = (
            CostQGreedyScheduler(predictor)
            .schedule(truth, item_id, budget)
            .value_by(budget)
        )
        assert star >= ours - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(b1=budgets, b2=budgets, item=st.integers(0, 19))
    def test_monotone_in_budget(self, truth, test_item_ids, b1, b2, item):
        item_id = test_item_ids[item % len(test_item_ids)]
        lo, hi = sorted((b1, b2))
        star = RelaxedOptimalDeadline()
        assert star.value(truth, item_id, hi) >= star.value(truth, item_id, lo) - 1e-9

    def test_full_budget_reaches_total(self, truth, test_item_ids, zoo):
        star = RelaxedOptimalDeadline()
        for item_id in test_item_ids[:10]:
            value = star.value(truth, item_id, zoo.total_time)
            assert value == pytest.approx(truth.total_value(item_id), abs=1e-9)

    def test_recall_of_zero_value_item_is_one(self, truth, zoo, test_item_ids):
        star = RelaxedOptimalDeadline()
        zero_items = [
            i for i in truth.item_ids if truth.total_value(i) == 0.0
        ]
        if not zero_items:
            pytest.skip("no zero-value items in this world sample")
        assert star.recall(truth, zero_items[0], 0.5) == 1.0
