"""Durability: WAL journal, checkpoints, manifests, and crash recovery.

Unit layers (framing, torn tails, rotation/compaction, atomic writes,
manifests) are tested directly against temp directories; the service
integration tests exercise the real admission path — journal an intent,
"crash" by never settling it, reopen, :meth:`LabelingService.recover` —
including the replay-idempotency contract through the single-flight
result cache.
"""

import json
import os
import struct

import pytest

from repro.durability import (
    CheckpointStore,
    Journal,
    JournalCorrupt,
    RunManifest,
    atomic_write_bytes,
)
from repro.engine import LabelingEngine
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import LabelingService, LabelingSpec


@pytest.fixture(scope="module")
def predictor(zoo, space):
    # Durability semantics do not depend on agent quality; an untrained
    # network keeps this module independent of the slow trained fixture.
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return AgentPredictor(agent, len(zoo))


@pytest.fixture(scope="module")
def engine(zoo, predictor, world_config):
    return LabelingEngine(zoo, predictor, world_config)


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:24]


def segment_files(directory):
    return sorted(p for p in directory.iterdir() if p.suffix == ".wal")


# -- unit: the journal --------------------------------------------------------


class TestJournal:
    def test_pending_is_admitted_minus_terminaled_across_reopen(self, tmp_path):
        with Journal(tmp_path, fsync="none") as journal:
            seqs = [
                journal.log_admission(f"item-{i}", "spec", None)
                for i in range(5)
            ]
            journal.log_terminal(seqs[0], "completed")
            journal.log_terminal(seqs[3], "failed")
        reopened = Journal(tmp_path, fsync="none")
        entries = reopened.pending_entries()
        assert [e.seq for e in entries] == [seqs[1], seqs[2], seqs[4]]
        assert [e.item for e in entries] == ["item-1", "item-2", "item-4"]
        assert reopened.stats().replayed == 7
        # seq stays monotonic across restarts
        assert reopened.log_admission("item-5", "spec", None) > max(seqs) + 2
        reopened.close()

    def test_torn_tail_is_truncated_once_and_counted(self, tmp_path):
        with Journal(tmp_path, fsync="none") as journal:
            for i in range(3):
                journal.log_admission(f"item-{i}", "spec", None)
        (segment,) = segment_files(tmp_path)
        clean_size = segment.stat().st_size
        # a crash mid-append: a frame header promising bytes that never landed
        with open(segment, "ab") as fh:
            fh.write(struct.pack("!II", 100, 0) + b"partial")
        reopened = Journal(tmp_path, fsync="none")
        assert reopened.stats().torn_tails == 1
        assert reopened.pending_count == 3
        assert segment.stat().st_size == clean_size
        reopened.close()
        # the truncation healed the file: a second open is clean
        clean = Journal(tmp_path, fsync="none")
        assert clean.stats().torn_tails == 0
        clean.close()

    def test_mid_file_corruption_raises_not_truncates(self, tmp_path):
        with Journal(tmp_path, fsync="none") as journal:
            for i in range(3):
                journal.log_admission(f"item-{i}", "spec", None)
        (segment,) = segment_files(tmp_path)
        data = bytearray(segment.read_bytes())
        data[12] ^= 0xFF  # flip a byte inside the first frame's body
        segment.write_bytes(bytes(data))
        with pytest.raises(JournalCorrupt, match="not a torn tail"):
            Journal(tmp_path, fsync="none")

    def test_rotation_then_compaction_bounds_disk(self, tmp_path):
        journal = Journal(
            tmp_path, fsync="none", segment_bytes=256, checkpoint_every=None
        )
        for i in range(20):
            seq = journal.log_admission(f"item-{i}", "padding" * 8, None)
            journal.log_terminal(seq, "completed")
        assert len(segment_files(tmp_path)) > 1
        journal.checkpoint()
        stats = journal.stats()
        assert stats.compacted > 0
        assert len(segment_files(tmp_path)) == 1  # only the fresh tail
        journal.close()
        reopened = Journal(tmp_path, fsync="none")
        assert reopened.pending_count == 0
        assert reopened.stats().replayed == 0  # history lives in the checkpoint
        reopened.close()

    def test_checkpoint_carries_pending_past_compaction(self, tmp_path):
        journal = Journal(tmp_path, fsync="none", checkpoint_every=None)
        seqs = [
            journal.log_admission(f"item-{i}", "spec", None) for i in range(5)
        ]
        for seq in seqs[:3]:
            journal.log_terminal(seq, "completed")
        journal.checkpoint()
        journal.close()
        reopened = Journal(tmp_path, fsync="none")
        assert [e.seq for e in reopened.pending_entries()] == seqs[3:]
        reopened.close()

    def test_custom_kinds_replay_and_reserved_range(self, tmp_path):
        journal = Journal(tmp_path, fsync="none")
        with pytest.raises(ValueError, match="custom records"):
            journal.append(Journal.KIND_ADMIT, b"nope")
        journal.append(Journal.KIND_CUSTOM, b"alpha")
        journal.append(Journal.KIND_CUSTOM + 1, b"beta")
        journal.close()
        reopened = Journal(tmp_path, fsync="none")
        kinds = [(kind, payload) for _, kind, payload in reopened.replayed_custom()]
        assert kinds == [
            (Journal.KIND_CUSTOM, b"alpha"),
            (Journal.KIND_CUSTOM + 1, b"beta"),
        ]
        only_beta = reopened.replayed_custom(Journal.KIND_CUSTOM + 1)
        assert [payload for _, _, payload in only_beta] == [b"beta"]
        reopened.close()

    def test_auto_checkpoint_fires_on_terminals(self, tmp_path):
        journal = Journal(tmp_path, fsync="none", checkpoint_every=2)
        for i in range(4):
            seq = journal.log_admission(f"item-{i}", "spec", None)
            journal.log_terminal(seq, "completed")
        assert journal.stats().checkpoints == 2
        journal.close()

    def test_fsync_batch_counts_on_flush_only(self, tmp_path):
        journal = Journal(tmp_path, fsync="batch")
        journal.log_admission("item", "spec", None)
        journal.log_admission("item2", "spec", None)
        assert journal.stats().fsyncs == 0
        journal.flush()
        assert journal.stats().fsyncs == 1
        journal.flush()  # nothing dirty: no second fsync
        assert journal.stats().fsyncs == 1
        journal.close()

    def test_validation_and_closed_append(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            Journal(tmp_path, fsync="sometimes")
        with pytest.raises(ValueError, match="segment_bytes"):
            Journal(tmp_path, segment_bytes=16)
        journal = Journal(tmp_path, fsync="none")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            journal.log_admission("item", "spec", None)


# -- unit: atomic writes and the checkpoint store -----------------------------


class TestAtomicWrites:
    def test_overwrites_atomically_with_no_temp_residue(self, tmp_path):
        target = tmp_path / "state.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"
        assert [p.name for p in tmp_path.iterdir()] == ["state.bin"]

    def test_failed_replace_leaves_old_file_and_cleans_temp(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "state.bin"
        target.write_bytes(b"old")
        monkeypatch.setattr(
            os, "replace", lambda *a: (_ for _ in ()).throw(OSError("disk"))
        )
        with pytest.raises(OSError, match="disk"):
            atomic_write_bytes(target, b"new")
        monkeypatch.undo()
        assert target.read_bytes() == b"old"
        assert [p.name for p in tmp_path.iterdir()] == ["state.bin"]


class TestCheckpointStore:
    def test_missing_then_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        empty = store.load()
        assert (empty.seq, empty.pending) == (0, {})
        store.save(7, {3: b"\x00payload", 5: b"other"})
        loaded = store.load()
        assert loaded.seq == 7
        assert loaded.pending == {3: b"\x00payload", 5: b"other"}
        # operator-inspectable: plain JSON on disk
        raw = json.loads((tmp_path / CheckpointStore.FILENAME).read_text())
        assert raw["seq"] == 7


# -- unit: run manifests ------------------------------------------------------


class TestRunManifest:
    def test_create_mark_done_resume_order(self, tmp_path):
        path = tmp_path / "run.json"
        manifest = RunManifest.create(
            path, [f"i{i}" for i in range(5)], {"deadline": 0.3}, flush_every=1
        )
        manifest.mark_done("i1", {"recall": 0.9})
        manifest.mark_done("i3")
        reloaded = RunManifest.load(path)
        assert reloaded.params == {"deadline": 0.3}
        assert reloaded.done == 2
        assert reloaded.remaining == ["i0", "i2", "i4"]  # original order kept
        assert reloaded.completed["i1"] == {"recall": 0.9}

    def test_flush_every_bounds_what_a_kill_loses(self, tmp_path):
        path = tmp_path / "run.json"
        manifest = RunManifest.create(
            path, ["a", "b", "c"], flush_every=10
        )
        manifest.mark_done("a")
        manifest.mark_done("b")
        # buffered, not yet on disk: a kill here re-runs a and b
        assert RunManifest.load(path).done == 0
        manifest.save()
        assert RunManifest.load(path).done == 2

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"version": 99, "item_ids": []}))
        with pytest.raises(ValueError, match="v99"):
            RunManifest.load(path)

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            RunManifest(tmp_path / "run.json", flush_every=0)


# -- integration: the service over a journal ----------------------------------


def service_for(engine, truth, journal_dir, **kwargs):
    kwargs.setdefault("deadline", 0.35)
    return LabelingService(engine, truth=truth, journal=str(journal_dir), **kwargs)


def orphan_admissions(directory, items, spec=None, copies=1):
    """Journal admissions that never settle — the crash we recover from."""
    spec = spec or LabelingSpec()
    journal = Journal(directory, fsync="always")
    seqs = []
    for item in items:
        for _ in range(copies):
            seqs.append(journal.log_admission(item, spec, None))
    journal.close()
    return seqs


class TestServiceJournal:
    def test_clean_run_leaves_nothing_pending(self, engine, truth, items, tmp_path):
        service = service_for(engine, truth, tmp_path, batch_size=4)
        with service:
            futures = [service.submit(item) for item in items[:8]]
            for future in futures:
                future.result(timeout=10)
        reopened = Journal(tmp_path)
        assert reopened.pending_count == 0
        reopened.close()

    def test_recover_replays_orphans_to_completion(
        self, engine, truth, items, tmp_path
    ):
        seqs = orphan_admissions(tmp_path, items[:5])
        service = service_for(engine, truth, tmp_path, batch_size=4)
        report = service.recover(timeout=30)
        assert (report.replayed, report.recovered, report.failed) == (5, 5, 0)
        assert report.pending == 0
        results = [future.result(timeout=10) for future in report.futures]
        assert [r.item_id for r in results] == [i.item_id for i in items[:5]]
        assert service.journal.pending_count == 0
        stats = service.recovery_stats()
        assert stats["runs"] == 1 and stats["recovered"] == 5
        service.shutdown()
        # the post-recovery checkpoint means a reopen owes nothing
        reopened = Journal(tmp_path)
        assert reopened.pending_count == 0
        reopened.close()
        assert len(seqs) == 5

    def test_replay_reproduces_the_original_trace(
        self, engine, truth, items, tmp_path
    ):
        # scheduling is deterministic over recorded truth: a replayed
        # request must re-execute to an identical result trace
        direct = service_for(engine, truth, tmp_path / "direct")
        with direct:
            reference = [
                f.result(timeout=10)
                for f in [direct.submit(item) for item in items[:4]]
            ]
        # admit under the same spec the direct run labeled with
        orphan_admissions(
            tmp_path / "crashed", items[:4], spec=LabelingSpec(deadline=0.35)
        )
        service = service_for(engine, truth, tmp_path / "crashed")
        report = service.recover(timeout=30)
        replayed = [future.result(timeout=10) for future in report.futures]
        for ref, got in zip(reference, replayed):
            assert got.item_id == ref.item_id
            assert got.trace.executions == ref.trace.executions
            assert got.trace.total_value == ref.trace.total_value
        service.shutdown()

    def test_recover_without_journal_raises(self, engine, truth):
        service = LabelingService(engine, truth=truth, deadline=0.35)
        with pytest.raises(ValueError, match="journal"):
            service.recover()
        service.shutdown()

    def test_recover_with_empty_journal_is_a_noop(
        self, engine, truth, tmp_path
    ):
        service = service_for(engine, truth, tmp_path)
        report = service.recover(timeout=10)
        assert (report.replayed, report.recovered, report.failed) == (0, 0, 0)
        service.shutdown()


class TestReplayIdempotency:
    def test_duplicate_admissions_coalesce_to_one_execution(
        self, engine, truth, items, tmp_path
    ):
        # crash window: three clients were told "admitted" for the same
        # item, none saw a result.  Recovery owes all three an answer but
        # the work must run once.
        orphan_admissions(tmp_path, [items[0]], copies=3)
        service = service_for(engine, truth, tmp_path, cache_size=64)
        report = service.recover(timeout=30)
        assert (report.replayed, report.recovered, report.failed) == (3, 3, 0)
        results = [future.result(timeout=10) for future in report.futures]
        assert len({id(r) for r in results}) == 1  # one shared flight
        cache = service.cache.stats()
        assert cache.misses == 1 and cache.coalesced == 2
        snapshot = service.snapshot()
        assert snapshot.counters.get("coalesced", 0) == 2
        # every duplicate's original seq still got its terminal
        assert service.journal.pending_count == 0
        service.shutdown()
        reopened = Journal(tmp_path)
        assert reopened.pending_count == 0
        reopened.close()
