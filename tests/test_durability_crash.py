"""Crash injection: SIGKILL a serving process mid-load, recover, lose nothing.

The child process (a standalone script, so SIGKILL means SIGKILL) runs a
real service over a journal with ``fsync="always"`` and prints a flushed
``ADMITTED <item_id>`` line only after :meth:`LabelingService.submit`
returns — i.e. after the admission record is durably on disk.  The
parent kills it mid-load, then verifies the acknowledged-admission
contract against the journal directory the child left behind:

* every acked admission is in the WAL (zero acknowledged-admission loss);
* every acked admission without a durable terminal is replayed by
  :meth:`~repro.serving.service.LabelingService.recover` to completion.
"""

import os
import pickle
import signal
import struct
import subprocess
import sys
import threading
import time
import zlib
from pathlib import Path

import pytest

from repro.durability import Journal
from repro.engine import LabelingEngine
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import LabelingService

SRC = str(Path(__file__).resolve().parent.parent / "src")

CHILD_SCRIPT = """
import sys, time
import numpy as np

from repro.config import smoke_scale
from repro.data.datasets import generate_dataset, train_test_split
from repro.engine import LabelingEngine
from repro.labels import build_label_space
from repro.scheduling.qgreedy import QValuePredictor
from repro.serving import LabelingService
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth


class SlowPredictor(QValuePredictor):
    # Slows each scheduling step so the parent reliably kills mid-backlog.
    def __init__(self, n_models):
        self.n_models = n_models

    def predict(self, state):
        time.sleep(0.05)
        return np.zeros(self.n_models)


journal_dir = sys.argv[1]
cfg = smoke_scale().world
space = build_label_space(cfg.vocab_scale)
zoo = build_zoo(cfg, space)
dataset = generate_dataset(space, cfg, "mscoco2017", 150)
_, test = train_test_split(dataset, seed=0)
items = test.items[:40]
truth = GroundTruth(zoo, dataset, cfg)
engine = LabelingEngine(zoo, SlowPredictor(len(zoo)), cfg)
service = LabelingService(
    engine,
    truth=truth,
    deadline=0.35,
    journal=journal_dir,
    journal_fsync="always",
    batch_size=2,
    max_wait=0.01,
    workers=1,
)
service.start()
for item in items:
    future = service.submit(item)
    # the admission is fsynced before submit() returns: safe to ack
    sys.stdout.write(f"ADMITTED {item.item_id}\\n")
    sys.stdout.flush()
    future.add_done_callback(
        lambda _f, item_id=item.item_id: (
            sys.stdout.write(f"DONE {item_id}\\n"),
            sys.stdout.flush(),
        )
    )
time.sleep(60)  # hold the backlog until the parent kills us
"""

_LENGTH = struct.Struct("!II")
_BODY_HEAD = struct.Struct("!BQ")


def scan_wal(journal_dir: Path) -> tuple[set[str], set[str]]:
    """(admitted ids, durably-settled ids) from the documented WAL format."""
    admitted: dict[int, str] = {}
    settled_seqs: set[int] = set()
    for segment in sorted(journal_dir.glob("segment-*.wal")):
        data = segment.read_bytes()
        offset = 0
        while offset + _LENGTH.size <= len(data):
            length, crc = _LENGTH.unpack_from(data, offset)
            body = data[offset + _LENGTH.size : offset + _LENGTH.size + length]
            if len(body) < length or zlib.crc32(body) != crc:
                break  # torn tail: everything before it already parsed
            kind, seq = _BODY_HEAD.unpack_from(body, 0)
            if kind == Journal.KIND_ADMIT:
                item, _spec, _deadline = pickle.loads(body[_BODY_HEAD.size :])
                admitted[seq] = item.item_id
            elif kind == Journal.KIND_TERMINAL:
                (admit_seq,) = struct.unpack_from("!Q", body, _BODY_HEAD.size)
                settled_seqs.add(admit_seq)
            offset += _LENGTH.size + length
    settled = {admitted[seq] for seq in settled_seqs if seq in admitted}
    return set(admitted.values()), settled


class TestSigkillRecovery:
    def test_acked_admissions_survive_sigkill(
        self, zoo, space, truth, world_config, tmp_path
    ):
        journal_dir = tmp_path / "journal"
        script = tmp_path / "crash_child.py"
        script.write_text(CHILD_SCRIPT)
        env = dict(os.environ, PYTHONPATH=SRC)
        child = subprocess.Popen(
            [sys.executable, str(script), str(journal_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        acked, done = [], []
        lines_lock = threading.Lock()

        def pump():
            for line in child.stdout:
                tag, _, item_id = line.strip().partition(" ")
                with lines_lock:
                    if tag == "ADMITTED":
                        acked.append(item_id)
                    elif tag == "DONE":
                        done.append(item_id)

        reader = threading.Thread(target=pump, daemon=True)
        reader.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                with lines_lock:
                    if len(acked) >= 10:
                        break
                if child.poll() is not None:
                    pytest.fail(
                        f"child exited early: {child.stderr.read()[-2000:]}"
                    )
                time.sleep(0.02)
            else:
                pytest.fail("child never acked 10 admissions")
        finally:
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=10)
        reader.join(timeout=5)
        assert child.returncode == -signal.SIGKILL
        with lines_lock:
            acked_set = set(acked)
        assert len(acked_set) >= 10

        # 1. zero acknowledged-admission loss: every ack is in the WAL
        admitted, settled = scan_wal(journal_dir)
        assert acked_set <= admitted

        # 2. restart over the same directory and recover the backlog
        agent = make_agent(
            "dueling_dqn",
            obs_dim=len(space),
            n_actions=len(zoo) + 1,
            hidden_size=32,
        )
        engine = LabelingEngine(
            zoo, AgentPredictor(agent, len(zoo)), world_config
        )
        service = LabelingService(
            engine, truth=truth, deadline=0.35, journal=str(journal_dir)
        )
        pending_ids = {
            entry.item.item_id for entry in service.journal.pending_entries()
        }
        # every acked admission is either durably settled or owed as pending
        assert acked_set <= (settled | pending_ids)
        report = service.recover(timeout=60)
        assert report.failed == 0
        assert report.recovered == report.replayed == len(pending_ids)
        results = {
            future.result(timeout=10).item_id for future in report.futures
        }
        assert pending_ids <= results
        assert service.journal.pending_count == 0
        service.shutdown()

        # 3. a third open finds a settled journal — nothing owed
        reopened = Journal(journal_dir)
        assert reopened.pending_count == 0
        reopened.close()
