"""The labeling engine: backend parity, batching, and record lifecycle."""

import numpy as np
import pytest

from repro.core.framework import AdaptiveModelScheduler
from repro.data.streams import batched
from repro.engine import (
    BACKEND_REGISTRY,
    BatchedBackend,
    LabelingEngine,
    LabelingJob,
    LabelingSpec,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.scheduling.qgreedy import AgentPredictor
from repro.zoo.oracle import GroundTruth


@pytest.fixture(scope="module")
def predictor(trained, zoo):
    return AgentPredictor(trained.agent, len(zoo))


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:24]


def engine_for(zoo, predictor, world_config, backend):
    return LabelingEngine(zoo, predictor, world_config, backend=backend)


#: The three constraint regimes of the paper plus the capped variant.
REGIMES = [
    pytest.param({}, id="unconstrained"),
    pytest.param({"max_models": 4}, id="max_models"),
    pytest.param({"deadline": 0.35}, id="deadline"),
    pytest.param({"deadline": 0.5, "memory_budget": 8000.0}, id="deadline_memory"),
]


class TestBackendParity:
    """Every backend must reproduce SerialBackend's traces exactly."""

    @pytest.mark.parametrize("regime", REGIMES)
    @pytest.mark.parametrize("backend", ["batched", "thread"])
    def test_trace_identical_to_serial(
        self, zoo, world_config, predictor, truth, items, backend, regime
    ):
        serial = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth, **regime
        )
        other = engine_for(zoo, predictor, world_config, backend).label_batch(
            items, truth=truth, **regime
        )
        assert len(serial) == len(other) == len(items)
        for ref, got in zip(serial, other):
            assert got.item_id == ref.item_id
            # trace-identical: same models, same order, same timings/values
            assert got.trace.executions == ref.trace.executions
            assert got.trace.total_value == ref.trace.total_value
            # identical label sets and recalls follow, but assert explicitly
            assert got.label_names == ref.label_names
            assert [l.confidence for l in got.labels] == [
                l.confidence for l in ref.labels
            ]
            assert got.recall == ref.recall

    @pytest.mark.parametrize("backend", ["batched", "thread"])
    def test_stream_matches_batch(
        self, zoo, world_config, predictor, truth, items, backend
    ):
        engine = engine_for(zoo, predictor, world_config, backend)
        from_batch = engine.label_batch(items, deadline=0.4, truth=truth)
        from_stream = list(
            engine.label_stream(
                iter(items),
                deadline=0.4,
                truth=truth,
                batch_size=7,
                release_records=False,
            )
        )
        for ref, got in zip(from_batch, from_stream):
            assert got.item_id == ref.item_id
            assert got.trace.executions == ref.trace.executions

    def test_batched_backend_uses_one_forward_per_round(
        self, zoo, world_config, predictor, truth, items
    ):
        calls = {"batch": 0, "single": 0}

        class CountingPredictor(AgentPredictor):
            def predict(self, state):
                calls["single"] += 1
                return super().predict(state)

            def predict_batch(self, states):
                calls["batch"] += 1
                return super().predict_batch(states)

        counting = CountingPredictor(predictor.agent, predictor.n_models)
        engine = engine_for(zoo, counting, world_config, "batched")
        engine.label_batch(items, truth=truth)
        # unconstrained: every item runs all models => n_models rounds,
        # each with exactly one stacked forward and no single predictions
        assert calls["batch"] == len(zoo)
        assert calls["single"] == 0


class TestSpecParity:
    """The spec= form must be trace-identical to the legacy kwargs form."""

    @pytest.mark.parametrize("regime", REGIMES)
    def test_label_batch_spec_equals_kwargs(
        self, zoo, world_config, predictor, truth, items, regime
    ):
        engine = engine_for(zoo, predictor, world_config, "batched")
        via_kwargs = engine.label_batch(items, truth=truth, **regime)
        via_spec = engine.label_batch(items, LabelingSpec(**regime), truth=truth)
        for ref, got in zip(via_kwargs, via_spec):
            assert got.item_id == ref.item_id
            assert got.trace.executions == ref.trace.executions
            assert got.label_names == ref.label_names

    def test_label_stream_spec_equals_kwargs(
        self, zoo, world_config, predictor, truth, items
    ):
        engine = engine_for(zoo, predictor, world_config, "batched")
        via_kwargs = list(
            engine.label_stream(
                items, deadline=0.4, truth=truth, batch_size=7,
                release_records=False,
            )
        )
        via_spec = list(
            engine.label_stream(
                items, LabelingSpec(deadline=0.4), truth=truth, batch_size=7,
                release_records=False,
            )
        )
        for ref, got in zip(via_kwargs, via_spec):
            assert got.trace.executions == ref.trace.executions

    def test_spec_and_kwargs_together_raise(
        self, zoo, world_config, predictor, truth, items
    ):
        engine = engine_for(zoo, predictor, world_config, "batched")
        with pytest.raises(ValueError, match="not both"):
            engine.label_batch(
                items, LabelingSpec(deadline=0.4), deadline=0.4, truth=truth
            )
        # streams validate at call time, before the first item is consumed
        with pytest.raises(ValueError, match="not both"):
            engine.label_stream(
                items, LabelingSpec(deadline=0.4), max_models=3, truth=truth
            )

    def test_policy_override_pins_the_regime(
        self, zoo, world_config, predictor, truth, items
    ):
        # policy="qgreedy" with a deadline set keeps the deadline for
        # grouping/admission but schedules greedily over the whole zoo
        engine = engine_for(zoo, predictor, world_config, "batched")
        spec = LabelingSpec(deadline=0.2, policy="qgreedy")
        assert spec.regime == "qgreedy"
        overridden = engine.label_batch(items[:6], spec, truth=truth)
        unconstrained = engine.label_batch(items[:6], truth=truth)
        for ref, got in zip(unconstrained, overridden):
            assert got.trace.executions == ref.trace.executions


class TestRecordLifecycle:
    def test_stream_releases_engine_owned_records(
        self, zoo, world_config, predictor, items
    ):
        shared = GroundTruth(zoo, [], world_config)
        engine = engine_for(zoo, predictor, world_config, "batched")
        results = list(
            engine.label_stream(items, truth=shared, batch_size=5)
        )
        assert len(results) == len(items)
        # everything the engine recorded was evicted after yielding
        assert len(shared) == 0

    def test_stream_keeps_records_on_opt_out(
        self, zoo, world_config, predictor, items
    ):
        shared = GroundTruth(zoo, [], world_config)
        engine = engine_for(zoo, predictor, world_config, "batched")
        list(
            engine.label_stream(
                items, truth=shared, batch_size=5, release_records=False
            )
        )
        assert len(shared) == len(items)

    def test_stream_never_releases_preexisting_records(
        self, zoo, world_config, predictor, items
    ):
        shared = GroundTruth(zoo, items[:3], world_config)
        engine = engine_for(zoo, predictor, world_config, "serial")
        list(engine.label_stream(items, truth=shared, batch_size=4))
        # the caller's three pre-recorded items survive; engine-added ones go
        assert set(shared.item_ids) == {item.item_id for item in items[:3]}

    def test_label_batch_release_opt_in(
        self, zoo, world_config, predictor, items
    ):
        shared = GroundTruth(zoo, [], world_config)
        engine = engine_for(zoo, predictor, world_config, "batched")
        engine.label_batch(items[:6], truth=shared)
        assert len(shared) == 6  # batch path keeps records by default
        engine.label_batch(items[6:12], truth=shared, release_records=True)
        assert len(shared) == 6  # the second batch was evicted


class TestEngineApi:
    def test_make_backend_registry(self):
        assert set(BACKEND_REGISTRY) == {
            "serial",
            "batched",
            "thread",
            "process",
            "cluster",
        }
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("batched"), BatchedBackend)
        assert isinstance(make_backend("thread"), ThreadPoolBackend)
        assert isinstance(make_backend("process"), ProcessPoolBackend)
        backend = ThreadPoolBackend(max_workers=2)
        assert make_backend(backend) is backend
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_job_validation(self, zoo, world_config, items):
        truth = GroundTruth(zoo, items[:1], world_config)
        ids = (items[0].item_id,)
        # constraint validation happens when the spec is built, before the
        # job ever exists
        with pytest.raises(ValueError, match="requires a deadline"):
            LabelingJob(truth=truth, item_ids=ids, spec=LabelingSpec(memory_budget=1.0))
        with pytest.raises(ValueError, match="non-negative"):
            LabelingJob(truth=truth, item_ids=ids, spec=LabelingSpec(deadline=-1.0))
        with pytest.raises(TypeError, match="LabelingSpec"):
            LabelingJob(truth=truth, item_ids=ids, spec={"deadline": 0.5})
        with pytest.raises(KeyError, match="not recorded"):
            LabelingJob(truth=truth, item_ids=("missing",))
        job = LabelingJob(
            truth=truth, item_ids=ids, spec=LabelingSpec(deadline=0.5, max_models=3)
        )
        # convenience views delegate to the spec
        assert job.deadline == 0.5
        assert job.memory_budget is None
        assert job.max_models == 3

    def test_invalid_batch_size(self, zoo, world_config, predictor):
        with pytest.raises(ValueError, match="batch_size"):
            LabelingEngine(zoo, predictor, world_config, batch_size=0)

    def test_stream_invalid_batch_size_override(
        self, zoo, world_config, predictor, truth, items
    ):
        # batch_size=0 must be an error, not a silent fall-through to the
        # engine default
        engine = engine_for(zoo, predictor, world_config, "batched")
        for bad in (0, -3):
            with pytest.raises(ValueError, match="batch_size"):
                engine.label_stream(items, truth=truth, batch_size=bad)

    def test_framework_delegates_to_engine(
        self, zoo, world_config, trained, truth, items
    ):
        per_item = AdaptiveModelScheduler(
            zoo, world_config, agent=trained.agent, backend="serial"
        )
        batched_fw = AdaptiveModelScheduler(
            zoo, world_config, agent=trained.agent, backend="batched"
        )
        singles = [per_item.label(i, deadline=0.4, truth=truth) for i in items[:8]]
        batch = batched_fw.label_batch(items[:8], deadline=0.4, truth=truth)
        for ref, got in zip(singles, batch):
            assert got.trace.executions == ref.trace.executions

    def test_framework_stream_backend_override(
        self, zoo, world_config, trained, truth, items
    ):
        scheduler = AdaptiveModelScheduler(
            zoo, world_config, agent=trained.agent, backend="thread", batch_size=4
        )
        results = list(
            scheduler.label_stream(
                items[:8], deadline=0.4, truth=truth, release_records=False
            )
        )
        assert [r.item_id for r in results] == [i.item_id for i in items[:8]]


class TestBatchedHelper:
    def test_chunks_and_tail(self):
        chunks = list(batched(range(10), 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_exact_division_has_no_empty_tail(self):
        assert list(batched(range(6), 3)) == [[0, 1, 2], [3, 4, 5]]

    def test_empty_iterable(self):
        assert list(batched([], 3)) == []

    def test_lazy_over_generators(self):
        def gen():
            yield from range(5)

        it = batched(gen(), 2)
        assert next(it) == [0, 1]
        assert next(it) == [2, 3]

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(batched([1], 0))


class TestPredictorBatch:
    def test_agent_predictor_batch_matches_loop(self, predictor, truth, items):
        from repro.core.state import LabelingState

        states = [LabelingState(truth, item.item_id) for item in items[:6]]
        states[1].execute(0)
        states[3].execute(2)
        stacked = predictor.predict_batch(states)
        assert stacked.shape == (6, predictor.n_models)
        looped = np.stack([predictor.predict(s) for s in states])
        np.testing.assert_allclose(stacked, looped, rtol=0, atol=1e-12)

    def test_q_values_batch_rejects_single_obs(self, trained, space):
        with pytest.raises(ValueError, match="batch"):
            trained.agent.q_values_batch(np.zeros(len(space)))
