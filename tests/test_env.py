"""Labeling MDP environment: observations, masking, rewards, episodes."""

import numpy as np
import pytest

from repro.core.reward import RewardConfig, reward_for_output
from repro.rl.env import LabelingEnv


@pytest.fixture()
def env(truth):
    return LabelingEnv(truth, seed=3)


class TestEpisodeLifecycle:
    def test_reset_returns_zero_observation(self, env):
        obs = env.reset()
        assert obs.shape == (env.obs_dim,)
        assert not obs.any()
        assert not env.done

    def test_action_space_includes_end(self, env, zoo):
        assert env.n_actions == len(zoo) + 1
        assert env.end_action == len(zoo)

    def test_no_end_variant(self, truth, zoo):
        env = LabelingEnv(truth, use_end_action=False)
        assert env.n_actions == len(zoo)
        env.reset()
        assert len(env.valid_action_mask()) == len(zoo)

    def test_step_before_reset_raises(self, truth):
        env = LabelingEnv(truth)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_end_action_terminates(self, env):
        env.reset()
        obs, reward, done, info = env.step(env.end_action)
        assert done and reward == 0.0 and info["end"]
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_all_models_terminates(self, env, zoo):
        env.reset()
        done = False
        for j in range(len(zoo)):
            _, _, done, _ = env.step(j)
        assert done
        assert env.state.all_executed

    def test_repeat_execution_rejected(self, env):
        env.reset()
        env.step(0)
        with pytest.raises(ValueError, match="already executed"):
            env.step(0)

    def test_out_of_range_action(self, env):
        env.reset()
        with pytest.raises(ValueError):
            env.step(99)

    def test_deterministic_reset_by_item(self, env, test_item_ids):
        env.reset(test_item_ids[0])
        assert env.state.item_id == test_item_ids[0]


class TestMasking:
    def test_mask_shrinks_with_execution(self, env, zoo):
        env.reset()
        mask0 = env.valid_action_mask()
        assert mask0[: len(zoo)].all() and mask0[env.end_action]
        env.step(4)
        mask1 = env.valid_action_mask()
        assert not mask1[4]
        assert mask1.sum() == mask0.sum() - 1

    def test_end_always_valid(self, env, zoo):
        env.reset()
        for j in range(len(zoo) // 2):
            env.step(j)
        assert env.valid_action_mask()[env.end_action]


class TestRewards:
    def test_reward_matches_equation3(self, truth, zoo):
        env = LabelingEnv(truth, seed=0)
        obs = env.reset()
        for j in range(len(zoo)):
            state_before = env.state.copy()
            _, reward, _, _ = env.step(j)
            # recompute expected from the state delta
            ids, confs = truth.valuable(env.state.item_id, j)
            gains = np.maximum(confs - state_before.confidences[ids], 0.0)
            new_confs = confs[gains > 0]
            assert reward == pytest.approx(reward_for_output(new_confs))

    def test_duplicate_labels_get_punished(self, truth, zoo, test_item_ids):
        """Re-covering already-output labels yields the -1 punishment."""
        env = LabelingEnv(truth, seed=0)
        punished = 0
        for item_id in test_item_ids:
            env.reset(item_id)
            # execute everything; at least the useless models are punished
            for j in range(len(zoo)):
                _, reward, _, _ = env.step(j)
                if reward == -1.0:
                    punished += 1
        assert punished > 0

    def test_theta_raises_reward(self, truth, zoo, test_item_ids):
        target = zoo[0].name
        base_env = LabelingEnv(truth, seed=0)
        theta_env = LabelingEnv(
            truth, reward_config=RewardConfig(theta={target: 10.0}), seed=0
        )
        diffs = 0
        for item_id in test_item_ids[:20]:
            base_env.reset(item_id)
            theta_env.reset(item_id)
            _, r_base, _, _ = base_env.step(0)
            _, r_theta, _, _ = theta_env.step(0)
            if r_base > 0:
                assert r_theta > r_base
                diffs += 1
        assert diffs > 0

    def test_info_fields(self, env):
        env.reset()
        _, _, _, info = env.step(0)
        assert set(info) >= {"model", "new_labels", "recall", "value"}

    def test_recall_reaches_one_after_all(self, env, zoo):
        env.reset()
        for j in range(len(zoo)):
            _, _, _, info = env.step(j)
        assert info["recall"] == pytest.approx(1.0)


class TestValidation:
    def test_empty_item_list_rejected(self, truth):
        with pytest.raises(ValueError):
            LabelingEnv(truth, item_ids=[])

    def test_unknown_items_rejected(self, truth):
        with pytest.raises(ValueError, match="not in ground truth"):
            LabelingEnv(truth, item_ids=["nope/000001"])
