"""Property-based tests for the evaluation function f(S, d) — Lemma 1.

The paper states f is non-negative, non-decreasing, and submodular.  We
verify all three on real ground-truth records with hypothesis-driven
subset/item selection, plus the incremental accumulator's consistency.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import OutputAccumulator, evaluate_subset, marginal_gain
from repro.core.state import LabelingState

N_MODELS = 10  # mini zoo size
model_subsets = st.frozensets(st.integers(0, N_MODELS - 1), max_size=N_MODELS)
model_ids = st.integers(0, N_MODELS - 1)
item_indices = st.integers(0, 99)


@pytest.fixture(scope="module")
def ids(truth):
    return list(truth.item_ids)[:100]


class TestLemma1:
    @settings(max_examples=60, deadline=None)
    @given(subset=model_subsets, item=item_indices)
    def test_non_negative(self, truth, ids, subset, item):
        assert evaluate_subset(truth, ids[item], subset) >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(subset=model_subsets, extra=model_ids, item=item_indices)
    def test_monotone(self, truth, ids, subset, extra, item):
        item_id = ids[item]
        f_small = evaluate_subset(truth, item_id, subset)
        f_large = evaluate_subset(truth, item_id, subset | {extra})
        assert f_large >= f_small - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(
        small=model_subsets,
        extra_models=st.frozensets(st.integers(0, N_MODELS - 1), max_size=4),
        added=model_ids,
        item=item_indices,
    )
    def test_submodular(self, truth, ids, small, extra_models, added, item):
        """f(S+m) - f(S) >= f(T+m) - f(T) whenever S is a subset of T."""
        item_id = ids[item]
        large = small | extra_models
        gain_small = evaluate_subset(truth, item_id, small | {added}) - (
            evaluate_subset(truth, item_id, small)
        )
        gain_large = evaluate_subset(truth, item_id, large | {added}) - (
            evaluate_subset(truth, item_id, large)
        )
        assert gain_small >= gain_large - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(item=item_indices)
    def test_full_set_equals_total_value(self, truth, ids, item):
        item_id = ids[item]
        f_all = evaluate_subset(truth, item_id, range(N_MODELS))
        assert f_all == pytest.approx(truth.total_value(item_id))

    @settings(max_examples=40, deadline=None)
    @given(subset=model_subsets, item=item_indices)
    def test_order_independence(self, truth, ids, subset, item):
        item_id = ids[item]
        forward = evaluate_subset(truth, item_id, sorted(subset))
        backward = evaluate_subset(truth, item_id, sorted(subset, reverse=True))
        assert forward == pytest.approx(backward)


class TestAccumulatorConsistency:
    @settings(max_examples=40, deadline=None)
    @given(
        order=st.permutations(list(range(N_MODELS))),
        prefix=st.integers(0, N_MODELS),
        item=item_indices,
    )
    def test_incremental_matches_batch(self, truth, ids, order, prefix, item):
        item_id = ids[item]
        acc = OutputAccumulator(truth, item_id)
        for j in order[:prefix]:
            acc.add(j)
        assert acc.value == pytest.approx(
            evaluate_subset(truth, item_id, order[:prefix])
        )

    @settings(max_examples=40, deadline=None)
    @given(subset=model_subsets, extra=model_ids, item=item_indices)
    def test_gain_of_matches_marginal(self, truth, ids, subset, extra, item):
        item_id = ids[item]
        acc = OutputAccumulator(truth, item_id)
        for j in subset:
            acc.add(j)
        expected = evaluate_subset(truth, item_id, set(subset) | {extra}) - acc.value
        assert acc.gain_of(extra) == pytest.approx(expected, abs=1e-9)

    def test_duplicate_add_is_noop(self, truth, ids):
        acc = OutputAccumulator(truth, ids[0])
        first = acc.add(0)
        assert acc.add(0) == 0.0
        assert acc.value == pytest.approx(first)


class TestStateConsistency:
    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(list(range(N_MODELS))), item=item_indices)
    def test_state_value_matches_evaluate_subset(self, truth, ids, order, item):
        item_id = ids[item]
        state = LabelingState(truth, item_id)
        for j in order:
            state.execute(j)
        assert state.value == pytest.approx(truth.total_value(item_id))
        assert state.recall == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(item=item_indices, model=model_ids)
    def test_marginal_gain_matches_execute(self, truth, ids, item, model):
        item_id = ids[item]
        state = LabelingState(truth, item_id)
        predicted = marginal_gain(truth, item_id, state.confidences, model)
        before = state.value
        state.execute(model)
        assert state.value - before == pytest.approx(predicted)
