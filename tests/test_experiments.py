"""Experiment harness integration tests at smoke scale.

Each experiment must run end-to-end, produce the paper-vs-measured fields,
and satisfy the qualitative shape it reproduces.  These are the slowest
tests in the suite (they train agents on the mini world).
"""

import pytest

from repro.experiments import (
    fig02_motivation,
    fig04_05_prediction,
    fig06_rules,
    fig07_sequence,
    fig09_theta,
    fig10_deadline,
    fig11_memory,
    table01_models,
    table03_overhead,
)
from repro.experiments.common import ExperimentContext
from repro.experiments.runner import EXPERIMENTS, main


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext("smoke")


class TestExperiments:
    def test_table01(self, ctx):
        report = table01_models.run(ctx)
        assert report.measured["n_tasks"] == 10
        assert "Table I" in report.text

    def test_fig02_order(self, ctx):
        report = fig02_motivation.run(ctx, n_items=30)
        m = report.measured
        assert m["optimal_time"] < m["random_time"] < m["no_policy_time"]
        assert 0 < m["optimal_fraction"] < 0.7

    def test_fig04_05_agent_between_optimal_and_random(self, ctx):
        report = fig04_05_prediction.run(
            ctx,
            datasets=("mscoco2017",),
            algos=("dueling_dqn",),
            n_items=30,
        )
        m = report.measured
        # the agent saves something vs random and less than the oracle
        assert m["dueling_models_saved_at_0.8_low"] > 0.0
        assert (
            m["mscoco2017_optimal_models_saved_at_0.8"]
            >= m["mscoco2017_dueling_models_saved_at_0.8"]
        )

    def test_fig06_rules_report(self, ctx):
        report = fig06_rules.run(ctx, n_items=30)
        assert "Table II" in report.text
        assert "rules_models_saved_at_0.8" in report.measured

    def test_fig07_sequence(self, ctx):
        report = fig07_sequence.run(ctx, dataset="mscoco2017", max_steps=5)
        assert "execution sequence" in report.text
        assert 0.0 <= report.measured["recall_after_sequence"] <= 1.0

    def test_fig09_theta_order_moves(self, ctx):
        report = fig09_theta.run(
            ctx, dataset="mscoco2017", thetas=(1.0, 10.0), n_items=25
        )
        m = report.measured
        assert m["order_theta_10"] <= m["order_theta_1"]

    def test_fig10_shape(self, ctx):
        report = fig10_deadline.run(
            ctx, datasets=("mscoco2017",), deadlines=(0.1, 0.3, 0.6), n_items=25
        )
        m = report.measured
        assert m["mscoco2017_improvement_at_0.5s"] > 0.0
        assert 0.0 < m["min_ratio"] <= 1.0

    def test_fig11_shape(self, ctx):
        report = fig11_memory.run(
            ctx,
            memory_budgets=(8000.0,),
            deadlines=(0.1, 0.3, 0.8),
            n_items=20,
        )
        assert 0.0 < report.measured["ratio_8gb"] <= 1.0

    def test_table03_overhead(self, ctx):
        report = table03_overhead.run(ctx, n_trials=50)
        m = report.measured
        # agent selection must be far below the fastest model execution
        assert m["selection_ms"] < m["model_ms_low"]


class TestRunner:
    def test_registry_covers_all_figures_and_tables(self):
        expected = {
            "table01",
            "fig02",
            "fig04_05",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "table03",
            "headline",
        }
        assert set(EXPERIMENTS) == expected

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out

    def test_runner_single_experiment(self, capsys, tmp_path):
        out_file = tmp_path / "results.md"
        assert main(
            ["--exp", "table01", "--scale", "smoke", "--out", str(out_file)]
        ) == 0
        assert "Table I" in capsys.readouterr().out
        assert out_file.read_text().startswith("\n## table01")
