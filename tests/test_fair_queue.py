"""Per-key dispatch buckets: fairness, parity with the legacy grouper,
timer-tick expiry, and lifecycle across buckets."""

import pytest

from repro.engine import LabelingEngine
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import (
    DeadlineExpired,
    LabelingRequest,
    LabelingService,
    LabelingSpec,
    RequestQueue,
    ServiceStopped,
)
from repro.serving.legacy import LegacyGroupingQueue
from repro.serving.queue import priority_weight


class FakeClock:
    """Deterministic injectable time source."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:24]


@pytest.fixture(scope="module")
def engine(zoo, space, world_config):
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return LabelingEngine(zoo, AgentPredictor(agent, len(zoo)), world_config)


def request_for(item, **kwargs):
    return LabelingRequest(item=item, **kwargs)


def drain_batches(queue, max_items):
    """Pop until empty; returns [(item_ids, reason), ...]."""
    popped = []
    while queue.depth:
        batch, expired, reason = queue.pop_batch(max_items, 0.0)
        assert expired == []
        popped.append(([r.item.item_id for r in batch], reason))
    return popped


class TestLegacyParity:
    @pytest.mark.parametrize("batch_size", [1, 4, 7, 64])
    def test_single_regime_traces_identical(self, items, batch_size):
        # The acceptance bar for the rewrite: on single-regime traffic the
        # bucket queue's dispatch trace (batch membership, order, flush
        # reasons) is indistinguishable from the PR-3 heap grouper's.
        spec = LabelingSpec(deadline=0.35)
        traces = []
        for queue_cls in (RequestQueue, LegacyGroupingQueue):
            queue = queue_cls(max_depth=64)
            for item in items:
                queue.put(request_for(item, spec=spec, priority=spec.priority))
            traces.append(drain_batches(queue, batch_size))
        assert traces[0] == traces[1]

    def test_single_bucket_specless_parity(self, items):
        traces = []
        for queue_cls in (RequestQueue, LegacyGroupingQueue):
            queue = queue_cls(max_depth=64)
            for item in items[:10]:
                queue.put(request_for(item))
            traces.append(drain_batches(queue, 4))
        assert traces[0] == traces[1]
        # underfull tail flushes as "wait" in both implementations
        assert [reason for _, reason in traces[0]] == ["size", "size", "wait"]

    def test_two_fresh_buckets_anchor_in_arrival_order(self, items):
        # Equal pass values tie-break FIFO by head sequence — the same
        # anchor the legacy grouper picks for equal priorities, and the
        # first flush is regime_split in both (other-key traffic waited).
        for queue_cls in (RequestQueue, LegacyGroupingQueue):
            queue = queue_cls(max_depth=64)
            a, b = LabelingSpec(), LabelingSpec(deadline=0.35)
            for i, item in enumerate(items[:8]):
                queue.put(request_for(item, spec=b if i % 2 else a))
            batch, _, reason = queue.pop_batch(16, 0.0)
            assert [r.batch_key for r in batch] == [a.batch_key] * 4
            assert reason == "regime_split"


class TestWeightedFairness:
    def test_starved_regime_keeps_flowing_under_cross_traffic(self, items):
        # Sustained saturating high-priority traffic of one regime, a
        # trickle of low-priority traffic of another: the legacy grouper
        # never anchors the low bucket until the high traffic stops, the
        # bucket queue serves it within a bounded number of batches.
        service_time = 0.01

        def simulate(queue_cls):
            clock = FakeClock()
            queue = queue_cls(max_depth=100_000, clock=clock)
            high = LabelingSpec(priority=3)
            low = LabelingSpec(deadline=50.0, priority=0)
            low_waits = []
            in_loop_low_dispatches = 0
            for step in range(200):
                for _ in range(8):
                    queue.put(
                        request_for(
                            items[0], spec=high, priority=3,
                            submitted_at=clock.now,
                        )
                    )
                if step % 4 == 0:
                    queue.put(
                        request_for(
                            items[1], spec=low, submitted_at=clock.now
                        )
                    )
                batch, _, _ = queue.pop_batch(8, 0.0)
                clock.advance(service_time)
                for request in batch:
                    if request.spec is low:
                        low_waits.append(clock.now - request.submitted_at)
                        in_loop_low_dispatches += 1
            while queue.depth:  # cross-traffic over: drain the backlog
                batch, _, _ = queue.pop_batch(8, 0.0)
                clock.advance(service_time)
                for request in batch:
                    if request.spec is low:
                        low_waits.append(clock.now - request.submitted_at)
            return in_loop_low_dispatches, low_waits

        fair_count, fair_waits = simulate(RequestQueue)
        legacy_count, legacy_waits = simulate(LegacyGroupingQueue)
        assert len(fair_waits) == len(legacy_waits) == 50
        # legacy: zero low-priority dispatches while the pressure lasts —
        # all 50 settle only in the post-traffic drain, with waits that
        # grow with the length of the trace (unbounded starvation)
        assert legacy_count == 0
        # bucket queue: the low bucket is served throughout, with every
        # wait bounded by a few service slots regardless of trace length
        assert fair_count == 50
        assert max(fair_waits) < 10 * service_time
        assert max(legacy_waits) > 10 * max(fair_waits)

    def test_higher_priority_bucket_served_proportionally_more(self, items):
        # Two continuously refilled buckets, priorities 2 vs 0: stride
        # charges 1/4 as much for the high bucket, so it gets ~4x the
        # batches — but the low bucket is still served regularly (aging).
        clock = FakeClock()
        queue = RequestQueue(max_depth=100_000, clock=clock)
        high = LabelingSpec(priority=2)
        low = LabelingSpec(deadline=50.0, priority=0)
        backlog = {high.batch_key: 0, low.batch_key: 0}
        served = {high.batch_key: 0, low.batch_key: 0}
        gaps_since_low = []
        gap = 0
        for _ in range(100):
            while backlog[high.batch_key] < 8:  # keep both buckets full
                queue.put(request_for(items[0], spec=high, priority=2))
                backlog[high.batch_key] += 1
            while backlog[low.batch_key] < 8:
                queue.put(request_for(items[1], spec=low))
                backlog[low.batch_key] += 1
            batch, _, _ = queue.pop_batch(4, 0.0)
            key = batch[0].batch_key
            served[key] += len(batch)
            backlog[key] -= len(batch)
            if batch[0].spec is low:
                gaps_since_low.append(gap)
                gap = 0
            else:
                gap += 1
        ratio = served[high.batch_key] / served[low.batch_key]
        assert 2.0 < ratio < 8.0  # ~4x, not starvation and not parity
        assert max(gaps_since_low) <= 8  # low is never parked for long

    def test_priority_weight_is_clamped_and_positive(self):
        assert priority_weight(0) == 1.0
        assert priority_weight(2) == 4.0
        assert priority_weight(10**9) == priority_weight(32)
        assert priority_weight(-(10**9)) == priority_weight(-32) > 0.0

    def test_idle_bucket_cannot_bank_credit(self, items):
        # A bucket that sat empty re-enters at the current virtual time:
        # going idle must not let it monopolize the queue afterwards.
        clock = FakeClock()
        queue = RequestQueue(max_depth=1024, clock=clock)
        a, b = LabelingSpec(), LabelingSpec(deadline=50.0)
        for _ in range(4):
            queue.put(request_for(items[0], spec=a))
        for _ in range(6):  # serve A alone for a while: vtime advances
            batch, _, _ = queue.pop_batch(2, 0.0)
            if not queue.depth:
                for _ in range(4):
                    queue.put(request_for(items[0], spec=a))
        # B wakes up; it must not be owed the whole vtime gap at once
        for _ in range(8):
            queue.put(request_for(items[1], spec=b))
        reasons = []
        for _ in range(4):
            batch, _, _ = queue.pop_batch(2, 0.0)
            reasons.append(batch[0].batch_key)
        assert a.batch_key in reasons  # A still gets served alongside B


class TestTimerExpiry:
    def test_expire_overdue_settles_only_overdue_buckets(self, items):
        clock = FakeClock()
        queue = RequestQueue(min_cost=0.1, clock=clock)
        keep = request_for(items[0], spec=LabelingSpec())
        doomed = [
            request_for(item, spec=LabelingSpec(deadline=5.0), deadline=0.3)
            for item in items[1:4]
        ]
        queue.put(keep)
        for request in doomed:
            queue.put(request)
        assert queue.expire_overdue() == []  # nothing overdue yet
        clock.advance(0.25)  # 0.05 budget left < min_cost 0.1
        removed = queue.expire_overdue()
        assert removed == doomed
        assert queue.depth == 1
        batch, expired, _ = queue.pop_batch(4, 0.0)
        assert batch == [keep] and expired == []

    def test_expire_overdue_skips_deadline_free_buckets(self, items):
        # The no-deadline fast path: nothing scanned, nothing removed.
        clock = FakeClock()
        queue = RequestQueue(min_cost=1.0, clock=clock)
        for item in items[:5]:
            queue.put(request_for(item))
        clock.advance(1_000.0)
        assert queue.expire_overdue() == []
        assert queue.depth == 5

    def test_stalled_bucket_settles_on_timer_not_on_dispatch(
        self, engine, truth, items, zoo
    ):
        # Regression for the pop-only expiry: the dispatcher is parked
        # forming a batch for bucket A (huge batch_size, long max_wait),
        # so bucket B is never dispatched — its doomed request must still
        # fail promptly via the reaper's timer tick, long before the 10 s
        # flush timer or drain would reach it.
        min_cost = float(zoo.times.min())
        service = LabelingService(
            engine,
            truth=truth,
            batch_size=64,
            max_wait=10.0,
            workers=1,
            expiry_interval=0.01,
        )
        with service:
            parked = service.submit(items[0], LabelingSpec())
            doomed = service.submit(
                items[1],
                LabelingSpec(deadline=0.35),
                deadline=min_cost + 0.05,
            )
            with pytest.raises(DeadlineExpired, match="expired after"):
                doomed.result(timeout=5)
            assert not parked.done()  # bucket A is still forming its batch
            service.drain(timeout=10)
            assert parked.result(timeout=10).item_id == items[0].item_id
        snapshot = service.snapshot()
        assert snapshot.counters["expired"] == 1
        assert snapshot.counters["completed"] == 1

    def test_expiry_interval_validation(self, engine):
        with pytest.raises(ValueError, match="expiry_interval"):
            LabelingService(engine, expiry_interval=-0.5)


class TestBucketLifecycle:
    def test_depth_counts_all_buckets_and_close_returns_fifo(self, items):
        queue = RequestQueue()
        specs = [LabelingSpec(), LabelingSpec(deadline=1.0),
                 LabelingSpec(deadline=1.0, memory_budget=100.0)]
        for i, item in enumerate(items[:9]):
            queue.put(request_for(item, spec=specs[i % 3]))
        assert queue.depth == 9
        leftovers = queue.close()
        # global submission order, regardless of bucket
        assert [r.item.item_id for r in leftovers] == [
            item.item_id for item in items[:9]
        ]
        assert queue.depth == 0
        with pytest.raises(ServiceStopped):
            queue.put(request_for(items[0]))
        assert queue.pop_batch(4, 0.0) == ([], [], None)

    def test_emptied_buckets_are_pruned(self, items):
        # Every distinct float deadline is its own batch_key; a long-lived
        # queue must not accumulate a bucket per key ever seen.
        queue = RequestQueue()
        for i in range(200):
            spec = LabelingSpec(deadline=1.0 + i * 0.001)
            queue.put(request_for(items[0], spec=spec))
            batch, _, _ = queue.pop_batch(4, 0.0)
            assert len(batch) == 1
        assert queue.depth == 0
        assert len(queue._buckets) == 0  # nothing queued, nothing tracked

    def test_expiry_sweep_prunes_drained_buckets(self, items):
        clock = FakeClock()
        queue = RequestQueue(min_cost=0.1, clock=clock)
        for i in range(20):
            spec = LabelingSpec(deadline=5.0 + i * 0.01)
            queue.put(request_for(items[0], spec=spec, deadline=0.2))
        clock.advance(1.0)
        assert len(queue.expire_overdue()) == 20
        assert len(queue._buckets) == 0

    def test_all_expired_bucket_falls_through_to_live_bucket(self, items):
        # When the fair pick's every request expired while queued, the
        # pop must move on to the next bucket instead of returning empty.
        clock = FakeClock()
        queue = RequestQueue(min_cost=0.1, clock=clock)
        doomed_spec = LabelingSpec(deadline=5.0)
        doomed = [
            request_for(item, spec=doomed_spec, deadline=0.2)
            for item in items[:3]
        ]
        for request in doomed:
            queue.put(request)
        clock.advance(1.0)
        live = request_for(items[3], spec=LabelingSpec(), submitted_at=clock.now)
        queue.put(live)
        batch, expired, reason = queue.pop_batch(4, 0.0)
        assert batch == [live]
        assert expired == doomed
        assert reason in ("wait", "regime_split")
