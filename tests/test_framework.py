"""AdaptiveModelScheduler: the public end-to-end API (Fig. 3)."""

import pytest

from repro.core.framework import AdaptiveModelScheduler


@pytest.fixture(scope="module")
def scheduler(zoo, world_config, trained):
    return AdaptiveModelScheduler(zoo, world_config, agent=trained.agent)


@pytest.fixture(scope="module")
def shared_truth(truth):
    return truth


class TestLabeling:
    def test_unconstrained_label(self, scheduler, splits, shared_truth):
        _, test = splits
        result = scheduler.label(test[0], truth=shared_truth)
        assert result.item_id == test[0].item_id
        assert result.recall == pytest.approx(1.0)
        assert len(result.models_executed) == len(scheduler.zoo)
        # labels sorted by confidence, descending
        confs = [l.confidence for l in result.labels]
        assert confs == sorted(confs, reverse=True)

    def test_max_models_cap(self, scheduler, splits, shared_truth):
        _, test = splits
        result = scheduler.label(test[1], max_models=4, truth=shared_truth)
        assert len(result.models_executed) == 4

    def test_deadline_uses_algorithm1(self, scheduler, splits, shared_truth, zoo):
        _, test = splits
        result = scheduler.label(test[2], deadline=0.3, truth=shared_truth)
        assert result.time_used <= 0.3 + 1e-9
        assert result.trace.serial_time <= 0.3 + 1e-9

    def test_memory_budget_uses_algorithm2(
        self, scheduler, splits, shared_truth, zoo
    ):
        _, test = splits
        result = scheduler.label(
            test[3], deadline=0.5, memory_budget=8000.0, truth=shared_truth
        )
        # parallel: makespan bounded, memory respected
        for e in result.trace.executions:
            assert zoo[e.model_index].mem <= 8000.0

    def test_memory_without_deadline_rejected(self, scheduler, splits):
        _, test = splits
        with pytest.raises(ValueError, match="requires a deadline"):
            scheduler.label(test[0], memory_budget=8000.0)

    def test_label_names_match_valuable_outputs(
        self, scheduler, splits, shared_truth, world_config
    ):
        _, test = splits
        result = scheduler.label(test[4], truth=shared_truth)
        # every reported label must be a valuable output of an executed model
        valid_names = set()
        for e in result.trace.executions:
            output = shared_truth.output(test[4].item_id, e.model_index)
            valid_names.update(
                l.name for l in output.valuable(world_config.valuable_confidence)
            )
        assert set(result.label_names) <= valid_names

    def test_label_stream(self, scheduler, splits, shared_truth):
        _, test = splits
        results = list(
            scheduler.label_stream(test[:5], deadline=0.4, truth=shared_truth)
        )
        assert len(results) == 5
        for item, result in zip(test[:5], results):
            assert result.item_id == item.item_id

    def test_untrained_scheduler_raises(self, zoo, world_config, splits):
        _, test = splits
        fresh = AdaptiveModelScheduler(zoo, world_config)
        with pytest.raises(RuntimeError, match="no trained agent"):
            fresh.label(test[0])

    def test_label_without_shared_truth(self, scheduler, splits):
        """The framework can execute the zoo on-the-fly for new items."""
        _, test = splits
        result = scheduler.label(test[5], max_models=3)
        assert len(result.models_executed) == 3


class TestTrainingPath:
    def test_train_then_label(self, zoo, world_config, splits, train_config):
        train, test = splits
        scheduler = AdaptiveModelScheduler(zoo, world_config)
        result = scheduler.train(
            train.items[:30],
            algo="dqn",
            train_config=train_config.with_(episodes=30),
        )
        assert scheduler.agent is result.agent
        labeled = scheduler.label(test[0], deadline=0.5)
        assert labeled.time_used <= 0.5 + 1e-9

    def test_train_reuses_existing_truth(
        self, zoo, world_config, splits, train_config, truth
    ):
        train, _ = splits
        scheduler = AdaptiveModelScheduler(zoo, world_config)
        result = scheduler.train(
            train.items[:20],
            algo="dqn",
            train_config=train_config.with_(episodes=10),
            truth=truth,
        )
        assert result.total_steps > 0
