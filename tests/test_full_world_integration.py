"""Full-world (1104-label / 30-model) integration guards.

The smoke suite runs on the mini world; these tests pin the properties of
the full world that the paper's numbers depend on.  They build a small
ground-truth sample, so they cost a couple of seconds, not minutes.
"""

import numpy as np
import pytest

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.labels import build_label_space
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.optimal import OptimalPolicy
from repro.scheduling.random_policy import RandomPolicy
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth


@pytest.fixture(scope="module")
def full_world():
    config = WorldConfig(vocab_scale="full")
    space = build_label_space("full")
    zoo = build_zoo(config, space)
    items = []
    for dataset in ("mscoco2017", "places365", "mirflickr25"):
        items.extend(generate_dataset(space, config, dataset, 40))
    truth = GroundTruth(zoo, items, config)
    return config, space, zoo, truth


class TestFullWorldCalibration:
    def test_paper_cardinalities(self, full_world):
        _, space, zoo, _ = full_world
        assert len(space) == 1104
        assert len(zoo) == 30
        assert zoo.total_time == pytest.approx(5.16)

    def test_useful_fraction_band(self, full_world):
        """§II shape guard: a meaningful share of executions is waste."""
        _, _, _, truth = full_world
        fraction = truth.useful_execution_fraction()
        assert 0.15 < fraction < 0.60

    def test_optimal_time_fraction_band(self, full_world):
        """The optimal policy must skip at least ~half the compute."""
        _, _, _, truth = full_world
        fraction = truth.optimal_time_fraction()
        assert 0.15 < fraction < 0.50

    def test_optimal_beats_random_by_wide_margin(self, full_world):
        _, _, zoo, truth = full_world
        ids = list(truth.item_ids)[:60]
        optimal_times = []
        random_times = []
        for item_id in ids:
            t_opt = run_ordering_policy(
                OptimalPolicy(), truth, item_id
            ).cost_to_recall(1.0)[1]
            t_rnd = run_ordering_policy(
                RandomPolicy(seed=1), truth, item_id
            ).cost_to_recall(1.0)[1]
            optimal_times.append(t_opt)
            random_times.append(t_rnd)
        assert np.mean(optimal_times) < 0.6 * np.mean(random_times)

    def test_every_task_useful_somewhere(self, full_world):
        """No dead tasks: each task's models emit value on some item."""
        _, _, zoo, truth = full_world
        useful_any = np.zeros(len(zoo), dtype=bool)
        for item_id in truth.item_ids:
            useful_any |= truth.record(item_id).useful_models
        tasks_with_value = {zoo[int(j)].task for j in np.nonzero(useful_any)[0]}
        assert tasks_with_value == {m.task for m in zoo}

    def test_dataset_profiles_visible_in_outputs(self, full_world):
        """Places365 items lean on scene labels; COCO items on objects."""
        _, _, zoo, truth = full_world
        place_indices = [
            j for j, m in enumerate(zoo) if m.task == "place_classification"
        ]
        object_indices = [
            j for j, m in enumerate(zoo) if m.task == "object_detection"
        ]

        def share(dataset, indices):
            totals, parts = 0.0, 0.0
            for item_id in truth.item_ids:
                if not item_id.startswith(dataset):
                    continue
                rec = truth.record(item_id)
                totals += rec.total_value
                parts += sum(rec.solo_values[j] for j in indices)
            return parts / max(totals, 1e-9)

        assert share("places365", place_indices) > share("mscoco2017", place_indices)
        assert share("mscoco2017", object_indices) > share(
            "places365", object_indices
        )

    def test_fig1_output_taxonomy(self, full_world):
        """Fig. 1's three output kinds all occur: useful, junk, nothing."""
        config, _, zoo, truth = full_world
        useful = junk = nothing = 0
        for item_id in list(truth.item_ids)[:40]:
            rec = truth.record(item_id)
            for j, output in enumerate(rec.outputs):
                if rec.solo_values[j] > 0:
                    useful += 1
                elif output.labels:
                    junk += 1
                else:
                    nothing += 1
        assert useful > 0 and junk > 0 and nothing > 0
