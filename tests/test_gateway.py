"""The multi-tenant gateway: auth, quotas, endpoints, isolation, metrics.

Unit layers (tenants, token buckets) are tested directly; the HTTP
surface is tested against a *live* background gateway over a real
service with the hierarchical queue — requests go through the full
wire -> auth -> quota -> nowait-submit -> dispatch path.
"""

import http.client
import json
import threading
import time

import pytest

from repro.engine import LabelingEngine
from repro.obs import MetricsRegistry, TraceBuffer
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import HierarchicalRequestQueue, LabelingService
from repro.serving.gateway import (
    LabelingGateway,
    Tenant,
    TenantDirectory,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- unit: tenants and auth --------------------------------------------------


class TestTenantDirectory:
    def test_authenticate_right_wrong_and_missing(self):
        directory = TenantDirectory(
            [Tenant("a", "key-a"), Tenant("b", "key-b")]
        )
        assert directory.authenticate("key-a").name == "a"
        assert directory.authenticate("key-b").name == "b"
        assert directory.authenticate("key-c") is None
        assert directory.authenticate("") is None
        assert directory.authenticate(None) is None

    def test_rejects_duplicate_names_and_keys(self):
        with pytest.raises(ValueError, match="unique"):
            TenantDirectory([Tenant("a", "k1"), Tenant("a", "k2")])
        with pytest.raises(ValueError, match="unique"):
            TenantDirectory([Tenant("a", "k"), Tenant("b", "k")])
        with pytest.raises(ValueError, match="at least one"):
            TenantDirectory([])

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            Tenant("", "key")
        with pytest.raises(ValueError):
            Tenant("a", "")
        with pytest.raises(ValueError):
            Tenant("a", "k", weight=0.0)
        with pytest.raises(ValueError):
            Tenant("a", "k", burst=0)
        with pytest.raises(ValueError):
            Tenant("a", "k", max_inflight=0)

    def test_from_json_file_and_env(self, tmp_path, monkeypatch):
        config = {
            "tenants": [
                {"name": "acme", "api_key": "s3cret", "weight": 4.0,
                 "rate": 100.0, "burst": 10, "max_inflight": 32},
                {"name": "free", "api_key": "hunter2"},
            ]
        }
        directory = TenantDirectory.from_json(config)
        acme = directory.get("acme")
        assert (acme.weight, acme.rate, acme.burst, acme.max_inflight) == (
            4.0, 100.0, 10, 32,
        )
        assert directory.get("free").rate == float("inf")
        assert directory.weights() == {"acme": 4.0, "free": 1.0}

        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(config))
        assert TenantDirectory.from_file(str(path)).get("acme").weight == 4.0

        monkeypatch.setenv("REPRO_GATEWAY_TENANTS", json.dumps(config))
        assert len(TenantDirectory.from_env()) == 2
        monkeypatch.delenv("REPRO_GATEWAY_TENANTS")
        with pytest.raises(ValueError, match="unset"):
            TenantDirectory.from_env()

    def test_unknown_config_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown tenant config"):
            Tenant.from_dict({"name": "a", "api_key": "k", "quota": 5})

    def test_demo_roster_is_deterministic(self):
        one, two = TenantDirectory.demo(3), TenantDirectory.demo(3)
        assert [t.api_key for t in one] == [t.api_key for t in two]
        assert one.authenticate("demo-key-tenant-1").name == "tenant-1"


# -- unit: quotas ------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_rate_limited_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.1)
        clock.advance(0.1)
        assert bucket.try_acquire() == 0.0

    def test_denial_spends_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        first = bucket.try_acquire()
        clock.advance(0.0)
        second = bucket.try_acquire()
        assert second == pytest.approx(first)  # no punishment spiral

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=5, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 5.0


class TestTenantQuota:
    def test_inflight_cap_and_release(self):
        quota = TenantQuota(Tenant("a", "k", max_inflight=2), FakeClock())
        assert quota.admit() is None
        assert quota.admit() is None
        denied = quota.admit()
        assert denied.reason == "inflight" and denied.retry_after > 0
        quota.release()
        assert quota.admit() is None
        assert quota.inflight == 2

    def test_rate_denial_reports_retry_after(self):
        clock = FakeClock()
        quota = TenantQuota(Tenant("a", "k", rate=5.0, burst=1), clock)
        assert quota.admit() is None
        denied = quota.admit()
        assert denied.reason == "rate_limit"
        assert denied.retry_after == pytest.approx(0.2)
        assert quota.inflight == 1  # denial admitted nothing

    def test_bulk_admit_is_all_or_nothing(self):
        quota = TenantQuota(Tenant("a", "k", max_inflight=3), FakeClock())
        assert quota.admit(3) is None
        assert quota.admit(1).reason == "inflight"
        assert quota.inflight == 3


# -- live gateway ------------------------------------------------------------


DIRECTORY = TenantDirectory(
    [
        Tenant("alpha", "key-alpha", weight=2.0),
        Tenant("beta", "key-beta"),
        # 2 requests then ~1/s: the 429 fixture tenant
        Tenant("throttled", "key-throttled", rate=1.0, burst=2),
        # one concurrent request at a time: the inflight-cap tenant
        Tenant("narrow", "key-narrow", max_inflight=1),
    ]
)


@pytest.fixture(scope="module")
def engine(zoo, space, world_config):
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return LabelingEngine(zoo, AgentPredictor(agent, len(zoo)), world_config)


@pytest.fixture(scope="module")
def gateway(engine, truth, dataset):
    registry = MetricsRegistry()
    service = LabelingService(
        engine,
        truth=truth,
        deadline=0.35,
        batch_size=8,
        max_wait=0.005,
        cache_size=256,
        registry=registry,
        tracer=TraceBuffer(128),
        queue_factory=lambda **kw: HierarchicalRequestQueue(
            tenant_weights=DIRECTORY.weights(), **kw
        ),
    )
    service.start()
    gw = LabelingGateway(service, DIRECTORY, dataset).start_background()
    yield gw
    gw.stop_background()
    service.shutdown()


@pytest.fixture(scope="module")
def item_ids(dataset):
    return [item.item_id for item in dataset][:20]


def call(gateway, method, path, body=None, key="key-alpha", headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
    try:
        all_headers = dict(headers or {})
        if key is not None and "X-API-Key" not in all_headers:
            all_headers["Authorization"] = f"Bearer {key}"
        payload = None
        if body is not None:
            payload = json.dumps(body)
            all_headers["Content-Type"] = "application/json"
        conn.request(method, path, payload, all_headers)
        response = conn.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw and raw.lstrip()[:1] in (b"{", b"[") else raw
        return response.status, dict(response.getheaders()), parsed
    finally:
        conn.close()


class TestAuth:
    def test_missing_and_wrong_key_are_401(self, gateway, item_ids):
        status, headers, body = call(
            gateway, "POST", "/v1/label", {"item_id": item_ids[0]}, key=None
        )
        assert status == 401
        assert headers.get("WWW-Authenticate") == "Bearer"
        status, _, _ = call(
            gateway, "POST", "/v1/label", {"item_id": item_ids[0]}, key="nope"
        )
        assert status == 401

    def test_x_api_key_header_works_too(self, gateway, item_ids):
        status, _, body = call(
            gateway,
            "POST",
            "/v1/label",
            {"item_id": item_ids[1]},
            key=None,
            headers={"X-API-Key": "key-beta"},
        )
        assert status == 200 and body["status"] == "completed"


class TestLabelEndpoints:
    def test_label_roundtrip_and_cache_flag(self, gateway, item_ids):
        status, _, first = call(
            gateway, "POST", "/v1/label", {"item_id": item_ids[2]}
        )
        assert status == 200
        assert first["item_id"] == item_ids[2]
        assert first["cached"] is False
        assert first["labels"] and all(
            set(label) == {"name", "confidence"} for label in first["labels"]
        )
        assert first["models_executed"]
        status, _, second = call(
            gateway, "POST", "/v1/label", {"item_id": item_ids[2]}
        )
        assert status == 200 and second["cached"] is True
        assert second["labels"] == first["labels"]

    def test_cache_is_tenant_partitioned(self, gateway, item_ids):
        # The cross-tenant isolation regression: alpha's cached result
        # must not leak to beta — beta's first request recomputes.
        call(gateway, "POST", "/v1/label", {"item_id": item_ids[3]})
        status, _, repeat = call(
            gateway, "POST", "/v1/label", {"item_id": item_ids[3]}
        )
        assert status == 200 and repeat["cached"] is True
        status, _, other = call(
            gateway, "POST", "/v1/label", {"item_id": item_ids[3]}, key="key-beta"
        )
        assert status == 200 and other["cached"] is False

    def test_spec_fields_flow_through(self, gateway, item_ids):
        status, _, body = call(
            gateway,
            "POST",
            "/v1/label",
            {"item_id": item_ids[4], "deadline": 0.5, "priority": 2},
        )
        assert status == 200 and body["status"] == "completed"

    def test_batch_sync_returns_all_items(self, gateway, item_ids):
        status, _, body = call(
            gateway, "POST", "/v1/label/batch", {"items": item_ids[5:9]}
        )
        assert status == 200
        assert body["total"] == 4 and body["completed"] == 4
        assert [r["item_id"] for r in body["results"]] == item_ids[5:9]

    def test_job_mode_polls_to_done_and_is_tenant_scoped(
        self, gateway, item_ids
    ):
        status, _, body = call(
            gateway,
            "POST",
            "/v1/label/batch",
            {"items": item_ids[9:12], "mode": "job"},
        )
        assert status == 202 and body["total"] == 3
        job_id = body["job_id"]
        deadline = time.time() + 30
        while True:
            status, _, poll = call(gateway, "GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if poll["status"] == "done":
                break
            assert time.time() < deadline, "job never finished"
            time.sleep(0.02)
        assert poll["done"] == 3
        assert all(r["status"] == "completed" for r in poll["results"])
        # another tenant cannot see the job, and unknown ids 404
        status, _, _ = call(gateway, "GET", f"/v1/jobs/{job_id}", key="key-beta")
        assert status == 404
        status, _, _ = call(gateway, "GET", "/v1/jobs/doesnotexist")
        assert status == 404

    def test_stream_emits_ndjson_per_item_plus_summary(self, gateway, item_ids):
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/label/stream",
                json.dumps({"items": item_ids[12:16]}),
                {
                    "Authorization": "Bearer key-alpha",
                    "Content-Type": "application/json",
                },
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Transfer-Encoding") == "chunked"
            lines = [
                json.loads(line)
                for line in response.read().decode().strip().split("\n")
            ]
        finally:
            conn.close()
        assert len(lines) == 5
        assert {line["item_id"] for line in lines[:-1]} == set(item_ids[12:16])
        assert lines[-1] == {"status": "end", "total": 4, "completed": 4}

    def test_items_endpoint_lists_catalog(self, gateway, dataset):
        status, _, body = call(gateway, "GET", "/v1/items")
        assert status == 200
        assert body["items"] == sorted(item.item_id for item in dataset)


class TestValidation:
    def test_unknown_item_is_404(self, gateway):
        status, _, body = call(
            gateway, "POST", "/v1/label", {"item_id": "no/such/item"}
        )
        assert status == 404 and "unknown item_id" in body["error"]

    def test_unknown_fields_and_bad_spec_are_400(self, gateway, item_ids):
        status, _, body = call(
            gateway, "POST", "/v1/label", {"item_id": item_ids[0], "bogus": 1}
        )
        assert status == 400 and "unknown request fields" in body["error"]
        status, _, body = call(
            gateway,
            "POST",
            "/v1/label",
            {"item_id": item_ids[0], "memory_budget": 100.0},
        )
        assert status == 400 and "invalid labeling spec" in body["error"]
        status, _, body = call(
            gateway, "POST", "/v1/label/batch", {"items": []}
        )
        assert status == 400

    def test_malformed_json_is_400(self, gateway):
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            conn.request(
                "POST",
                "/v1/label",
                "{not json",
                {"Authorization": "Bearer key-alpha"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_wrong_method_is_405_and_unknown_route_404(self, gateway):
        status, _, _ = call(gateway, "GET", "/v1/label")
        assert status == 405
        status, _, _ = call(gateway, "POST", "/v1/nothing", {})
        assert status == 404


class TestQuotas:
    def test_rate_limit_bursts_get_429_with_retry_after(self, gateway, item_ids):
        # burst=2, rate=1/s: a 10-wide concurrent burst must admit at
        # most the bucket's capacity and 429 the rest, every denial
        # carrying Retry-After.
        results = []
        lock = threading.Lock()

        def one(index):
            status, headers, body = call(
                gateway,
                "POST",
                "/v1/label",
                {"item_id": item_ids[index % len(item_ids)]},
                key="key-throttled",
            )
            with lock:
                results.append((status, headers, body))

        threads = [threading.Thread(target=one, args=(i,)) for i in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        granted = [r for r in results if r[0] == 200]
        denied = [r for r in results if r[0] == 429]
        assert len(granted) <= 2
        assert len(granted) + len(denied) == 10
        for _, headers, body in denied:
            assert int(headers["Retry-After"]) >= 1
            assert body["reason"] == "rate_limit"
            assert body["retry_after"] > 0

    def test_inflight_cap_excess_concurrency_gets_429(self, gateway, item_ids):
        # max_inflight=1: of N truly concurrent label calls, the denied
        # ones report the inflight reason; afterwards the slot frees.
        barrier = threading.Barrier(4)
        results = []
        lock = threading.Lock()

        def one(index):
            barrier.wait()
            status, _, body = call(
                gateway,
                "POST",
                "/v1/label",
                {"item_id": item_ids[16 + index % 4]},
                key="key-narrow",
            )
            with lock:
                results.append((status, body))

        threads = [threading.Thread(target=one, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = sorted(s for s, _ in results)
        assert statuses.count(200) >= 1
        for status, body in results:
            if status == 429:
                assert body["reason"] == "inflight"
        # the cap is a concurrency limit, not a lockout: a lone request
        # after the burst succeeds
        status, _, _ = call(
            gateway,
            "POST",
            "/v1/label",
            {"item_id": item_ids[17]},
            key="key-narrow",
        )
        assert status == 200


class TestBackpressure:
    def test_full_queue_answers_429_not_a_blocked_loop(
        self, engine, truth, dataset
    ):
        # An *unstarted* service never drains its queue: with max_depth=2
        # under the blocking overflow policy, a synchronous submit would
        # park forever — the gateway's nowait path must answer 429 with
        # Retry-After immediately instead.
        directory = TenantDirectory([Tenant("solo", "key-solo")])
        service = LabelingService(
            engine, truth=truth, deadline=0.35, max_depth=2, overflow="block"
        )
        gw = LabelingGateway(service, directory, dataset).start_background()
        try:
            ids = [item.item_id for item in dataset][:3]
            status, _, body = call(
                gw,
                "POST",
                "/v1/label/batch",
                {"items": ids[:2], "mode": "job"},
                key="key-solo",
            )
            assert status == 202
            started = time.monotonic()
            status, headers, body = call(
                gw, "POST", "/v1/label", {"item_id": ids[2]}, key="key-solo"
            )
            elapsed = time.monotonic() - started
            assert status == 429
            assert body["reason"] == "backpressure"
            assert int(headers["Retry-After"]) >= 1
            assert elapsed < 5.0  # immediate rejection, not a queue wait
        finally:
            gw.stop_background()
            service.queue.close()


class TestMountedObservability:
    def test_metrics_and_traces_served_from_gateway_port(self, gateway):
        status, _, text = call(gateway, "GET", "/metrics", key=None)
        assert status == 200
        text = text.decode()
        for family in (
            "repro_gateway_requests_total",
            "repro_gateway_admitted_total",
            "repro_gateway_rejected_total",
            "repro_gateway_inflight",
            "repro_gateway_e2e_seconds",
            "repro_tenant_queue_wait_seconds",
            "repro_tenant_slo_completed_total",
            "repro_requests_total",
        ):
            assert family in text, family
        assert 'tenant="alpha"' in text
        status, _, body = call(gateway, "GET", "/metrics.json", key=None)
        assert status == 200 and "repro_gateway_requests_total" in body
        status, _, body = call(gateway, "GET", "/traces?n=5", key=None)
        assert status == 200
        status, _, raw = call(gateway, "GET", "/healthz", key=None)
        assert status == 200 and raw == b"ok\n"

    def test_rejections_and_tenant_labels_in_families(self, gateway):
        snapshot = gateway.registry.snapshot()
        rejected = snapshot["repro_gateway_rejected_total"]["samples"]
        reasons = {s["labels"]["reason"] for s in rejected}
        assert "rate_limit" in reasons
        requests = snapshot["repro_gateway_requests_total"]["samples"]
        tenants = {s["labels"]["tenant"] for s in requests}
        assert {"alpha", "beta", "throttled", "-"} <= tenants

    def test_quota_accounting_returns_to_zero(self, gateway):
        # All earlier tests finished their requests: no leaked in-flight.
        deadline = time.time() + 10
        while any(gateway.tenant_inflight().values()):
            assert time.time() < deadline, gateway.tenant_inflight()
            time.sleep(0.02)


# -- durable job store --------------------------------------------------------


class TestJobDurability:
    """Batch jobs survive a gateway + service restart via the job journal."""

    def build_pair(self, engine, truth, dataset, tmp_path):
        service = LabelingService(
            engine,
            truth=truth,
            deadline=0.35,
            batch_size=8,
            max_wait=0.005,
            cache_size=256,
            journal=str(tmp_path / "service"),
        )
        service.start()
        gw = LabelingGateway(
            service, DIRECTORY, dataset, journal=str(tmp_path / "jobs")
        ).start_background()
        return service, gw

    def poll_job(self, gw, job_id, want="done", timeout=15.0):
        deadline = time.time() + timeout
        while True:
            status, _, body = call(gw, "GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if body["status"] == want or time.time() > deadline:
                return body
            time.sleep(0.02)

    def test_finished_job_survives_restart(
        self, engine, truth, dataset, item_ids, tmp_path
    ):
        service, gw = self.build_pair(engine, truth, dataset, tmp_path)
        try:
            status, _, body = call(
                gw, "POST", "/v1/label/batch",
                {"items": item_ids[:4], "mode": "job"},
            )
            assert status == 202
            job_id = body["job_id"]
            finished = self.poll_job(gw, job_id)
            assert finished["status"] == "done"
        finally:
            gw.stop_background()
            service.shutdown()

        service2, gw2 = self.build_pair(engine, truth, dataset, tmp_path)
        try:
            status, _, restored = call(gw2, "GET", f"/v1/jobs/{job_id}")
            assert status == 200
            assert restored["status"] == "done"
            assert restored["results"] == finished["results"]
            # tenant scoping survives the restart too
            status, _, _ = call(
                gw2, "GET", f"/v1/jobs/{job_id}", key="key-beta"
            )
            assert status == 404
        finally:
            gw2.stop_background()
            service2.shutdown()

    def test_unfinished_job_completes_via_cache_probes(
        self, engine, truth, dataset, item_ids, tmp_path
    ):
        # A job that was created but never finished before the crash: the
        # restored job answers "running", then turns "done" as recovery
        # (here: fresh label traffic) lands its items in the result cache.
        import pickle as _pickle

        from repro.durability import Journal
        from repro.serving import LabelingSpec
        from repro.serving.gateway.app import _KIND_JOB_CREATE

        spec = LabelingSpec.resolve(None, tenant="alpha")
        journal = Journal(tmp_path / "jobs")
        journal.append(
            _KIND_JOB_CREATE,
            _pickle.dumps(("feedfacecafe0001", "alpha", item_ids[:2], spec), 4),
        )
        journal.close()

        service, gw = self.build_pair(engine, truth, dataset, tmp_path)
        try:
            status, _, body = call(gw, "GET", "/v1/jobs/feedfacecafe0001")
            assert status == 200
            assert body["status"] == "running"
            assert {row["status"] for row in body["results"]} == {"pending"}
            for item_id in item_ids[:2]:
                status, _, _body = call(
                    gw, "POST", "/v1/label", {"item_id": item_id}
                )
                assert status == 200
            body = self.poll_job(gw, "feedfacecafe0001")
            assert body["status"] == "done"
            assert [row["item_id"] for row in body["results"]] == item_ids[:2]
            assert all(row["status"] == "completed" for row in body["results"])
        finally:
            gw.stop_background()
            service.shutdown()

        # the assembled results were persisted: a second restart serves
        # them without any cache to probe
        service2, gw2 = self.build_pair(engine, truth, dataset, tmp_path)
        try:
            status, _, again = call(gw2, "GET", "/v1/jobs/feedfacecafe0001")
            assert status == 200 and again["status"] == "done"
        finally:
            gw2.stop_background()
            service2.shutdown()
