"""Model-relationship graph (§VIII future work): construction + policy."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.metrics import average_cost_curves
from repro.graph import GraphPolicy, build_relationship_graph
from repro.graph.policy import GraphPredictor
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.deadline import CostQGreedyScheduler
from repro.scheduling.random_policy import RandomPolicy


@pytest.fixture(scope="module")
def graph(truth, splits):
    train, _ = splits
    return build_relationship_graph(truth, [i.item_id for i in train])


class TestConstruction:
    def test_base_rates_are_probabilities(self, graph):
        assert (graph.base_rate >= 0).all() and (graph.base_rate <= 1).all()

    def test_conditionals_are_probabilities(self, graph):
        for matrix in (graph.cond_useful, graph.cond_useless):
            assert (matrix >= 0).all() and (matrix <= 1 + 1e-12).all()

    def test_self_conditional_is_one(self, graph, truth):
        """P(i useful | i useful) = 1 whenever i is ever useful."""
        for i in range(graph.n_models):
            if graph.base_rate[i] > 0:
                assert graph.cond_useful[i, i] == pytest.approx(1.0)

    def test_base_rate_matches_truth(self, graph, truth, splits):
        train, _ = splits
        ids = [i.item_id for i in train]
        expected = np.mean(
            [truth.record(i).useful_models for i in ids], axis=0
        )
        assert np.allclose(graph.base_rate, expected)

    def test_person_chain_has_positive_lift(self, graph, truth, zoo):
        """Pose usefulness must be lifted by face/gender usefulness —
        they share the person-presence latent cause."""
        face = zoo.index_of("mini_face_det")
        pose = zoo.index_of("mini_pose")
        assert graph.lift(face, pose) > 1.1

    def test_unrelated_models_near_independent(self, graph, zoo):
        place = zoo.index_of("mini_place")
        dog = zoo.index_of("mini_dog")
        # place classification succeeds almost everywhere -> little signal
        assert 0.3 < graph.lift(place, dog) < 3.0

    def test_empty_items_rejected(self, truth):
        with pytest.raises(ValueError):
            build_relationship_graph(truth, [])

    def test_support_counted(self, graph, splits):
        train, _ = splits
        assert graph.support == len(train)


class TestNetworkxExport:
    def test_export_nodes_and_edges(self, graph):
        g = graph.to_networkx(min_lift_ratio=1.3)
        assert isinstance(g, nx.DiGraph)
        assert set(g.nodes) == set(graph.model_names)
        for _, _, data in g.edges(data=True):
            lift = data["lift"]
            assert lift >= 1.3 or lift <= 1 / 1.3

    def test_bad_ratio_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.to_networkx(min_lift_ratio=0.5)

    def test_strongest_edges_sorted(self, graph):
        edges = graph.strongest_edges(k=5)
        lifts = [e[2] for e in edges]
        assert lifts == sorted(lifts, reverse=True)


class TestPosterior:
    def test_no_evidence_returns_base_rate(self, graph):
        assert np.allclose(
            graph.expected_usefulness([], []), graph.base_rate
        )

    def test_useful_evidence_raises_correlated_model(self, graph, zoo):
        face = zoo.index_of("mini_face_det")
        pose = zoo.index_of("mini_pose")
        posterior = graph.expected_usefulness([face], [])
        assert posterior[pose] > graph.base_rate[pose]

    def test_useless_evidence_lowers_correlated_model(self, graph, zoo):
        face = zoo.index_of("mini_face_det")
        emotion = zoo.index_of("mini_emotion")
        posterior = graph.expected_usefulness([], [face])
        assert posterior[emotion] <= graph.base_rate[emotion] + 1e-9


class TestGraphPolicy:
    def test_beats_random(self, graph, truth, test_item_ids):
        graph_traces = [
            run_ordering_policy(GraphPolicy(graph), truth, i)
            for i in test_item_ids
        ]
        random_traces = [
            run_ordering_policy(RandomPolicy(seed=21), truth, i)
            for i in test_item_ids
        ]
        g = average_cost_curves("graph", graph_traces)
        r = average_cost_curves("random", random_traces)
        assert g.at(0.8)[0] < r.at(0.8)[0]

    def test_full_trace_valid(self, graph, truth, test_item_ids):
        trace = run_ordering_policy(GraphPolicy(graph), truth, test_item_ids[0])
        assert trace.recall == pytest.approx(1.0)
        indices = [e.model_index for e in trace.executions]
        assert len(set(indices)) == len(indices)


class TestGraphPredictor:
    def test_drives_algorithm1(self, graph, truth, splits, test_item_ids):
        train, _ = splits
        predictor = GraphPredictor(graph, truth, [i.item_id for i in train])
        scheduler = CostQGreedyScheduler(predictor)
        budget = 0.3
        trace = scheduler.schedule(truth, test_item_ids[0], budget)
        assert trace.serial_time <= budget + 1e-9

    def test_predictions_nonnegative(self, graph, truth, splits, test_item_ids):
        from repro.core.state import LabelingState

        train, _ = splits
        predictor = GraphPredictor(graph, truth, [i.item_id for i in train])
        state = LabelingState(truth, test_item_ids[0])
        values = predictor.predict(state)
        assert (values >= 0).all()
        state.execute(0)
        values_after = predictor.predict(state)
        assert values_after.shape == values.shape
