"""Hierarchical (tenant -> batch_key) stride dispatch: flat parity on
single-tenant traffic, starvation bounds and weighted shares across
tenants, batch purity, and group lifecycle."""

import pytest

from repro.serving import (
    HierarchicalRequestQueue,
    LabelingRequest,
    LabelingSpec,
    QueueFull,
    RequestQueue,
)


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:30]


def request_for(item, tenant=None, **spec_kwargs):
    spec = LabelingSpec(tenant=tenant, **spec_kwargs)
    return LabelingRequest(item=item, spec=spec, priority=spec.priority)


def drain_batches(queue, max_items):
    """Pop until empty; returns [(item_ids, reason), ...]."""
    popped = []
    while queue.depth:
        batch, expired, reason = queue.pop_batch(max_items, 0.0)
        assert expired == []
        popped.append(([r.item.item_id for r in batch], reason))
    return popped


def batch_tenants(queue, max_items):
    """Pop until empty; returns the tenant set of each dispatched batch."""
    tenants = []
    while queue.depth:
        batch, _, _ = queue.pop_batch(max_items, 0.0)
        tenants.append({r.tenant for r in batch})
    return tenants


class TestSingleTenantParity:
    @pytest.mark.parametrize("batch_size", [1, 4, 7, 64])
    @pytest.mark.parametrize("tenant", [None, "acme"])
    def test_mixed_regime_traces_identical(self, items, batch_size, tenant):
        # The PR's acceptance bar: with one tenant (or no tenant — None
        # is itself a tenant), the hierarchical queue's dispatch trace
        # (batch membership, order, flush reasons) is indistinguishable
        # from the flat RequestQueue across regimes and priorities.
        def spec_for(i):
            if i % 3 == 0:
                return dict(deadline=0.35, priority=i % 2)
            if i % 3 == 1:
                return dict(deadline=0.35, memory_budget=8000.0, priority=2)
            return dict(priority=0)

        traces = []
        for queue_cls in (RequestQueue, HierarchicalRequestQueue):
            queue = queue_cls(max_depth=64)
            for i, item in enumerate(items):
                queue.put(request_for(item, tenant=tenant, **spec_for(i)))
            traces.append(drain_batches(queue, batch_size))
        assert traces[0] == traces[1]

    def test_interleaved_arrivals_and_pops_stay_in_lockstep(self, items):
        # Parity must hold across pop/put interleavings, not just a
        # pre-loaded queue: virtual times evolve during service.
        flat = RequestQueue(max_depth=64)
        hier = HierarchicalRequestQueue(max_depth=64)
        arrivals = [
            request_for(item, tenant="t", deadline=0.35, priority=i % 3)
            for i, item in enumerate(items)
        ]
        for cut in (10, 20, len(arrivals)):
            for queue in (flat, hier):
                for request in arrivals[cut - 10 : cut]:
                    queue.put(
                        LabelingRequest(
                            item=request.item,
                            spec=request.spec,
                            priority=request.priority,
                        )
                    )
            for _ in range(2):
                flat_batch, _, flat_reason = flat.pop_batch(4, 0.0)
                hier_batch, _, hier_reason = hier.pop_batch(4, 0.0)
                assert [r.item.item_id for r in flat_batch] == [
                    r.item.item_id for r in hier_batch
                ]
                assert flat_reason == hier_reason
        assert drain_batches(flat, 4) == drain_batches(hier, 4)


class TestTenantFairness:
    def test_cold_tenant_served_within_bounded_batches(self, items):
        # Starvation bound: a hot tenant pre-loads a deep backlog, then a
        # cold tenant's single request arrives.  Equal weights mean the
        # cold tenant must be picked within two batches (the in-progress
        # charge plus one), no matter how deep the hot backlog is.
        queue = HierarchicalRequestQueue(max_depth=256)
        for _ in range(8):
            for item in items[:20]:
                queue.put(request_for(item, tenant="hot"))
        queue.put(request_for(items[20], tenant="cold"))
        served_at = None
        for index in range(10):
            batch, _, _ = queue.pop_batch(8, 0.0)
            if any(r.tenant == "cold" for r in batch):
                served_at = index
                break
        assert served_at is not None and served_at <= 1

    def test_flat_queue_lacks_the_bound_hierarchical_provides(self, items):
        # The motivating asymmetry: under the flat queue a late arrival
        # into one shared FIFO bucket waits behind the entire hot
        # backlog; the hierarchy serves the cold tenant's bucket second.
        def load(queue, tag_tenant):
            for _ in range(8):
                for item in items[:20]:
                    queue.put(
                        request_for(
                            item, tenant="hot" if tag_tenant else None
                        )
                    )
            queue.put(
                request_for(items[20], tenant="cold" if tag_tenant else None)
            )

        def batches_until(queue, item_id):
            for index in range(100):
                batch, _, _ = queue.pop_batch(8, 0.0)
                if any(r.item.item_id == item_id for r in batch):
                    return index
            return 100

        flat = RequestQueue(max_depth=256)
        load(flat, tag_tenant=False)
        hier = HierarchicalRequestQueue(max_depth=256)
        load(hier, tag_tenant=True)
        target = items[20].item_id
        assert batches_until(hier, target) <= 1
        # same spec => same bucket: the flat queue serves the backlog first
        assert batches_until(flat, target) == (8 * 20) // 8

    def test_weighted_tenant_gets_proportional_share(self, items):
        # weight 3 vs 1 with both backlogged: of the first 8 batches, the
        # heavy tenant owns ~3/4 (stride guarantees exact proportions
        # over a full cycle, +-1 batch at the boundary).
        queue = HierarchicalRequestQueue(
            max_depth=512, tenant_weights={"paid": 3.0, "free": 1.0}
        )
        for _ in range(10):
            for item in items[:12]:
                queue.put(request_for(item, tenant="paid"))
                queue.put(request_for(item, tenant="free"))
        served = {"paid": 0, "free": 0}
        for _ in range(8):
            batch, _, _ = queue.pop_batch(6, 0.0)
            served[batch[0].tenant] += 1
        assert served["paid"] == 6
        assert served["free"] == 2

    def test_batches_are_never_cross_tenant(self, items):
        # Same spec, different tenants: the flat queue would coalesce
        # them into one bucket; the hierarchy keeps every batch
        # single-tenant so charges attribute cleanly.
        queue = HierarchicalRequestQueue(max_depth=128)
        for i, item in enumerate(items):
            queue.put(request_for(item, tenant=f"t{i % 3}"))
        for tenants in batch_tenants(queue, 8):
            assert len(tenants) == 1

    def test_idle_tenant_cannot_bank_credit(self, items):
        # A tenant that goes idle re-enters at the current outer virtual
        # time: its absence must not convert into a burst that starves
        # the tenant that kept the service busy.
        queue = HierarchicalRequestQueue(max_depth=512)
        queue.put(request_for(items[0], tenant="idler"))
        batch, _, _ = queue.pop_batch(4, 0.0)
        assert batch[0].tenant == "idler"
        # busy tenant works alone for a long stretch
        for _ in range(10):
            for item in items[:8]:
                queue.put(request_for(item, tenant="busy"))
        for _ in range(5):
            queue.pop_batch(8, 0.0)
        # idler returns with a backlog: service must alternate, not
        # hand the idler an uninterrupted catch-up run
        for _ in range(4):
            for item in items[:8]:
                queue.put(request_for(item, tenant="idler"))
        first_eight = [queue.pop_batch(8, 0.0)[0][0].tenant for _ in range(8)]
        assert set(first_eight) == {"idler", "busy"}

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            HierarchicalRequestQueue(tenant_weights={"bad": 0.0})
        with pytest.raises(ValueError):
            HierarchicalRequestQueue(default_tenant_weight=-1.0)


class TestLifecycle:
    def test_tenant_depths_and_group_pruning(self, items):
        queue = HierarchicalRequestQueue(max_depth=64)
        for item in items[:6]:
            queue.put(request_for(item, tenant="a"))
        for item in items[6:10]:
            queue.put(request_for(item, tenant="b"))
        assert queue.tenant_depths() == {"a": 6, "b": 4}
        while queue.depth:
            queue.pop_batch(8, 0.0)
        assert queue.tenant_depths() == {}
        assert queue._groups == {}

    def test_close_returns_fifo_and_clears_groups(self, items):
        queue = HierarchicalRequestQueue(max_depth=64)
        for i, item in enumerate(items[:9]):
            queue.put(request_for(item, tenant=f"t{i % 3}"))
        leftovers = queue.close()
        assert [r.item.item_id for r in leftovers] == [
            item.item_id for item in items[:9]
        ]
        assert queue._groups == {}

    def test_nowait_put_rejects_full_queue_despite_block_policy(self, items):
        queue = HierarchicalRequestQueue(max_depth=2, overflow="block")
        queue.put(request_for(items[0], tenant="a"))
        queue.put(request_for(items[1], tenant="a"))
        with pytest.raises(QueueFull, match="nowait"):
            queue.put(request_for(items[2], tenant="b"), nowait=True)
        assert queue.depth == 2
        assert queue.tenant_depths() == {"a": 2}
