"""LabelSpace: global id bijection, task ranges, vector helpers."""

import numpy as np
import pytest

from repro.labels import build_label_space
from repro.vocab import ALL_TASKS, TASK_OBJECT, TASK_PLACE


@pytest.fixture(scope="module")
def full_space():
    return build_label_space("full")


class TestIndexing:
    def test_len_matches_vocabulary(self, full_space):
        assert len(full_space) == 1104

    def test_roundtrip_name_id(self, full_space):
        for name in ("person", "pub", "face", "left_wrist", "akita"):
            gid = full_space.id_of(name)
            assert full_space.name_of(gid) == name

    def test_ids_are_dense_and_ordered_by_task(self, full_space):
        seen = []
        for task in ALL_TASKS:
            r = full_space.task_range(task)
            seen.extend(range(r.start, r.stop))
        assert seen == list(range(len(full_space)))

    def test_task_of(self, full_space):
        assert full_space.task_of(full_space.id_of("person")) == TASK_OBJECT
        assert full_space.task_of(full_space.id_of("pub")) == TASK_PLACE

    def test_info_consistency(self, full_space):
        info = full_space.info(full_space.id_of("dog"))
        assert info.name == "dog"
        assert info.task == TASK_OBJECT
        local = full_space.vocabulary.labels_for(TASK_OBJECT).index("dog")
        assert info.local_id == local

    def test_unknown_label_raises(self, full_space):
        with pytest.raises(KeyError):
            full_space.id_of("not_a_label")

    def test_contains(self, full_space):
        assert "person" in full_space
        assert "unicorn_detector" not in full_space

    def test_task_ids_array(self, full_space):
        ids = full_space.task_ids(TASK_OBJECT)
        assert len(ids) == 80
        assert ids.dtype == np.int64
        assert (np.diff(ids) == 1).all()

    def test_ids_of_batch(self, full_space):
        ids = full_space.ids_of(["person", "dog"])
        assert full_space.name_of(int(ids[0])) == "person"
        assert full_space.name_of(int(ids[1])) == "dog"


class TestVectorHelpers:
    def test_empty_state(self, full_space):
        state = full_space.empty_state()
        assert state.shape == (1104,)
        assert state.dtype == np.float32
        assert not state.any()

    def test_names_of_state(self, full_space):
        state = full_space.empty_state()
        state[full_space.id_of("person")] = 1.0
        state[full_space.id_of("pub")] = 1.0
        names = full_space.names_of_state(state)
        assert set(names) == {"person", "pub"}

    def test_mini_space_consistent(self):
        mini = build_label_space("mini")
        assert len(mini) == mini.vocabulary.total_labels
        for task in ALL_TASKS:
            r = mini.task_range(task)
            assert len(r) == len(mini.vocabulary.labels_for(task))
