"""Algorithm 2 + parallel executor: memory compliance, parallelism, quality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.deadline_memory import (
    MemoryDeadlineScheduler,
    RandomMemoryDeadlineScheduler,
    RelaxedOptimalMemoryDeadline,
)
from repro.scheduling.qgreedy import AgentPredictor


@pytest.fixture(scope="module")
def predictor(trained, zoo):
    return AgentPredictor(trained.agent, len(zoo))


def memory_usage_over_time(trace, zoo):
    """(time, usage) events to verify the memory budget at every instant."""
    events = []
    for e in trace.executions:
        events.append((e.start_time, zoo[e.model_index].mem))
        events.append((e.finish_time, -zoo[e.model_index].mem))
    events.sort(key=lambda ev: (ev[0], ev[1] > 0))  # releases before starts
    usage = 0.0
    peaks = []
    for _, delta in events:
        usage += delta
        peaks.append(usage)
    return peaks


class TestAlgorithm2:
    @settings(max_examples=20, deadline=None)
    @given(
        budget=st.floats(0.1, 1.5),
        mem=st.sampled_from([8000.0, 12000.0, 16000.0]),
        item=st.integers(0, 19),
    )
    def test_memory_budget_respected_at_all_times(
        self, truth, zoo, predictor, test_item_ids, budget, mem, item
    ):
        item_id = test_item_ids[item % len(test_item_ids)]
        trace = MemoryDeadlineScheduler(predictor).schedule(
            truth, item_id, budget, mem
        )
        peaks = memory_usage_over_time(trace, zoo)
        assert all(p <= mem + 1e-6 for p in peaks)

    def test_parallel_execution_happens(self, truth, zoo, predictor, test_item_ids):
        """With generous memory, executions overlap in time."""
        trace = MemoryDeadlineScheduler(predictor).schedule(
            truth, test_item_ids[0], 2.0, 16000.0
        )
        overlaps = 0
        executions = trace.executions
        for a in executions:
            for b in executions:
                if a is not b and a.start_time < b.finish_time - 1e-12 and (
                    b.start_time < a.finish_time - 1e-12
                ):
                    overlaps += 1
        assert overlaps > 0

    def test_no_duplicate_models(self, truth, predictor, test_item_ids):
        trace = MemoryDeadlineScheduler(predictor).schedule(
            truth, test_item_ids[0], 2.0, 12000.0
        )
        indices = [e.model_index for e in trace.executions]
        assert len(indices) == len(set(indices))

    def test_zero_budgets(self, truth, predictor, test_item_ids):
        trace = MemoryDeadlineScheduler(predictor).schedule(
            truth, test_item_ids[0], 0.0, 8000.0
        )
        assert trace.n_executed == 0
        with pytest.raises(ValueError):
            MemoryDeadlineScheduler(predictor).schedule(
                truth, test_item_ids[0], -0.1, 8000.0
            )

    def test_tiny_memory_runs_serially_small_models(
        self, truth, zoo, predictor, test_item_ids
    ):
        tiny = float(zoo.mems.min())
        trace = MemoryDeadlineScheduler(predictor).schedule(
            truth, test_item_ids[0], 1.0, tiny
        )
        for e in trace.executions:
            assert zoo[e.model_index].mem <= tiny + 1e-9
        peaks = memory_usage_over_time(trace, zoo)
        assert all(p <= tiny + 1e-6 for p in peaks)

    def test_more_memory_never_much_worse(self, truth, predictor, test_item_ids):
        """Average recall should weakly improve with memory (shape check)."""
        budget = 0.4
        recalls = []
        for mem in (8000.0, 16000.0):
            values = [
                MemoryDeadlineScheduler(predictor)
                .schedule(truth, i, budget, mem)
                .recall_by(budget)
                for i in test_item_ids
            ]
            recalls.append(float(np.mean(values)))
        assert recalls[1] >= recalls[0] - 0.05

    def test_beats_random_packing(self, truth, predictor, test_item_ids):
        # Tight enough that selection matters: the mini zoo totals 1 s of
        # serial work, so generous budgets saturate every policy.
        budget, mem = 0.1, 8000.0
        ours = np.mean(
            [
                MemoryDeadlineScheduler(predictor)
                .schedule(truth, i, budget, mem)
                .recall_by(budget)
                for i in test_item_ids
            ]
        )
        rand = np.mean(
            [
                RandomMemoryDeadlineScheduler(seed=7)
                .schedule(truth, i, budget, mem)
                .recall_by(budget)
                for i in test_item_ids
            ]
        )
        assert ours > rand


class TestRandomMemoryScheduler:
    @settings(max_examples=15, deadline=None)
    @given(
        budget=st.floats(0.1, 1.0),
        mem=st.sampled_from([8000.0, 12000.0]),
        item=st.integers(0, 9),
    )
    def test_memory_respected(self, truth, zoo, test_item_ids, budget, mem, item):
        item_id = test_item_ids[item % len(test_item_ids)]
        trace = RandomMemoryDeadlineScheduler(seed=1).schedule(
            truth, item_id, budget, mem
        )
        peaks = memory_usage_over_time(trace, zoo)
        assert all(p <= mem + 1e-6 for p in peaks)

    def test_may_overshoot_deadline(self, truth, zoo, test_item_ids):
        """Paper semantics: packing ignores finish times, so the last wave
        can straddle the deadline (wasted work)."""
        budget = 0.15
        overshoots = 0
        for item_id in test_item_ids[:10]:
            trace = RandomMemoryDeadlineScheduler(seed=2).schedule(
                truth, item_id, budget, 16000.0
            )
            overshoots += sum(
                1 for e in trace.executions if e.finish_time > budget + 1e-9
            )
        assert overshoots > 0


class TestRelaxedOptimalMemory:
    @settings(max_examples=15, deadline=None)
    @given(
        budget=st.floats(0.0, 1.0),
        mem=st.sampled_from([8000.0, 12000.0, 16000.0]),
        item=st.integers(0, 9),
    )
    def test_upper_bounds_algorithm2(
        self, truth, predictor, test_item_ids, budget, mem, item
    ):
        item_id = test_item_ids[item % len(test_item_ids)]
        star = RelaxedOptimalMemoryDeadline().value(truth, item_id, budget, mem)
        ours_trace = MemoryDeadlineScheduler(predictor).schedule(
            truth, item_id, budget, mem
        )
        assert star >= ours_trace.value_by(budget) - 1e-9

    def test_zero_value_item_recall_one(self, truth):
        zero_items = [i for i in truth.item_ids if truth.total_value(i) == 0.0]
        if not zero_items:
            pytest.skip("no zero-value items")
        star = RelaxedOptimalMemoryDeadline()
        assert star.recall(truth, zero_items[0], 0.5, 8000.0) == 1.0
