"""Neural-network library: gradient checks against finite differences,
optimizer behaviour, serialization."""

import numpy as np
import pytest

from repro.rl.nn.layers import Dense, ReLU
from repro.rl.nn.loss import huber_loss, mse_loss
from repro.rl.nn.net import DuelingQNetwork, MLPQNetwork
from repro.rl.nn.opt import SGD, Adam


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        f_plus = f()
        x[idx] = old - eps
        f_minus = f()
        x[idx] = old
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


@pytest.fixture()
def net_rng():
    return np.random.default_rng(42)


class TestDense:
    def test_forward_shape(self, net_rng):
        layer = Dense(5, 3, net_rng)
        out = layer.forward(np.ones((4, 5)))
        assert out.shape == (4, 3)

    def test_gradient_check(self, net_rng):
        layer = Dense(4, 3, net_rng)
        x = net_rng.normal(size=(6, 4))
        target = net_rng.normal(size=(6, 3))

        def loss_fn():
            out = layer.forward(x, train=False)
            return 0.5 * np.sum((out - target) ** 2)

        out = layer.forward(x, train=True)
        layer.zero_grad()
        grad_in = layer.backward(out - target)
        num_dW = numerical_grad(loss_fn, layer.W)
        num_db = numerical_grad(loss_fn, layer.b)
        assert np.allclose(layer.dW, num_dW, atol=1e-5)
        assert np.allclose(layer.db, num_db, atol=1e-5)
        num_dx = numerical_grad(loss_fn, x)
        assert np.allclose(grad_in, num_dx, atol=1e-5)

    def test_grads_accumulate_until_zeroed(self, net_rng):
        layer = Dense(3, 2, net_rng)
        x = np.ones((2, 3))
        layer.forward(x)
        layer.backward(np.ones((2, 2)))
        first = layer.dW.copy()
        layer.forward(x)
        layer.backward(np.ones((2, 2)))
        assert np.allclose(layer.dW, 2 * first)
        layer.zero_grad()
        assert not layer.dW.any()

    def test_bad_dims_rejected(self, net_rng):
        with pytest.raises(ValueError):
            Dense(0, 3, net_rng)

    def test_backward_before_forward_raises(self, net_rng):
        layer = Dense(3, 2, net_rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


class TestReLU:
    def test_forward_clamps(self):
        relu = ReLU()
        out = relu.forward(np.asarray([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        relu = ReLU()
        relu.forward(np.asarray([[-1.0, 3.0]]))
        grad = relu.backward(np.asarray([[5.0, 5.0]]))
        assert np.allclose(grad, [[0.0, 5.0]])


class TestLosses:
    def test_mse_value_and_grad(self):
        pred = np.asarray([1.0, 2.0])
        target = np.asarray([0.0, 0.0])
        loss, grad = mse_loss(pred, target)
        assert loss == pytest.approx(2.5)
        assert np.allclose(grad, [1.0, 2.0])

    def test_huber_quadratic_region(self):
        pred = np.asarray([0.5])
        target = np.asarray([0.0])
        loss, grad = huber_loss(pred, target)
        assert loss == pytest.approx(0.125)
        assert np.allclose(grad, [0.5])

    def test_huber_linear_region(self):
        pred = np.asarray([3.0])
        target = np.asarray([0.0])
        loss, grad = huber_loss(pred, target)
        assert loss == pytest.approx(2.5)
        assert np.allclose(grad, [1.0])

    def test_huber_gradient_check(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=8) * 2
        target = rng.normal(size=8)
        _, grad = huber_loss(pred, target)

        def f():
            return huber_loss(pred, target)[0]

        assert np.allclose(grad, numerical_grad(f, pred), atol=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            huber_loss(np.zeros(2), np.zeros(3))


class TestNetworks:
    @pytest.mark.parametrize("cls", [MLPQNetwork, DuelingQNetwork])
    def test_forward_shape(self, cls, net_rng):
        net = cls(12, 5, 16, net_rng)
        out = net.forward(np.ones((3, 12)))
        assert out.shape == (3, 5)

    @pytest.mark.parametrize("cls", [MLPQNetwork, DuelingQNetwork])
    def test_full_gradient_check(self, cls, net_rng):
        net = cls(6, 4, 8, net_rng)
        x = net_rng.normal(size=(5, 6))
        target = net_rng.normal(size=(5, 4))

        def loss_fn():
            return 0.5 * np.sum((net.forward(x, train=False) - target) ** 2)

        out = net.forward(x, train=True)
        net.zero_grad()
        net.backward(out - target)
        for param, grad in zip(net.params(), net.grads()):
            assert np.allclose(grad, numerical_grad(loss_fn, param), atol=1e-4)

    def test_dueling_mean_subtraction(self, net_rng):
        """Q = V + A - mean(A): adding a constant to A leaves Q unchanged."""
        net = DuelingQNetwork(6, 4, 8, net_rng)
        x = net_rng.normal(size=(2, 6))
        q_before = net.forward(x, train=False)
        net.adv_head.b += 7.0  # constant advantage shift
        q_after = net.forward(x, train=False)
        assert np.allclose(q_before, q_after)

    def test_copy_from_and_state_dict(self, net_rng):
        a = MLPQNetwork(6, 3, 8, net_rng)
        b = MLPQNetwork(6, 3, 8, np.random.default_rng(7))
        x = np.ones((1, 6))
        assert not np.allclose(a.forward(x, False), b.forward(x, False))
        b.copy_from(a)
        assert np.allclose(a.forward(x, False), b.forward(x, False))
        state = a.state_dict()
        c = MLPQNetwork(6, 3, 8, np.random.default_rng(9))
        c.load_state_dict(state)
        assert np.allclose(a.forward(x, False), c.forward(x, False))

    def test_load_state_dict_shape_mismatch(self, net_rng):
        a = MLPQNetwork(6, 3, 8, net_rng)
        b = MLPQNetwork(6, 3, 16, net_rng)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_q_values_single_obs(self, net_rng):
        net = MLPQNetwork(6, 3, 8, net_rng)
        q = net.q_values(np.zeros(6))
        assert q.shape == (3,)


class TestOptimizers:
    def _quadratic_descent(self, opt, steps=200):
        """Minimize ||x - 3||^2 from 0; returns final x."""
        x = np.zeros(4)
        for _ in range(steps):
            grad = 2 * (x - 3.0)
            opt.step([x], [grad])
        return x

    def test_sgd_converges(self):
        x = self._quadratic_descent(SGD(lr=0.1))
        assert np.allclose(x, 3.0, atol=1e-3)

    def test_sgd_momentum_converges(self):
        x = self._quadratic_descent(SGD(lr=0.05, momentum=0.9))
        assert np.allclose(x, 3.0, atol=1e-2)

    def test_adam_converges(self):
        x = self._quadratic_descent(Adam(lr=0.1), steps=400)
        assert np.allclose(x, 3.0, atol=1e-2)

    def test_adam_grad_clip(self):
        opt = Adam(lr=0.1, grad_clip=1.0)
        x = np.zeros(1)
        opt.step([x], [np.asarray([1e9])])
        # First Adam step magnitude is ~lr regardless of raw grad size.
        assert abs(x[0]) <= 0.11

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(lr=-1.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam(lr=0.0)
