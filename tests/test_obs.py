"""The observability layer: registry, traces, instrumentation, endpoint."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine import LabelingEngine
from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    TraceBuffer,
    batch_observer,
    install,
    installed,
    service_families,
    uninstall,
)
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import (
    LabelingService,
    LabelingSpec,
    LatencyHistogram,
    LatencyStats,
    ServiceTelemetry,
)


@pytest.fixture(scope="module")
def predictor(zoo, space):
    # Observability semantics do not depend on agent quality; an untrained
    # network keeps this module independent of the slow trained fixture.
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return AgentPredictor(agent, len(zoo))


@pytest.fixture(scope="module")
def engine(zoo, predictor, world_config):
    return LabelingEngine(zoo, predictor, world_config)


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:24]


@pytest.fixture(autouse=True)
def _clean_instrumentation():
    # Instrumentation is process-global; never leak it across tests.
    uninstall()
    yield
    uninstall()


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "Requests")
        requests.inc()
        requests.inc(4)
        depth = registry.gauge("depth", "Depth")
        depth.set(7)
        depth.dec(2)
        latency = registry.histogram("latency_seconds", "Latency")
        for value in (0.1, 0.2, 0.3):
            latency.observe(value)
        text = registry.render_prometheus()
        assert "requests_total 5" in text
        assert "depth 5" in text
        assert 'latency_seconds{quantile="0.5"} 0.2' in text
        assert "latency_seconds_count 3" in text
        assert "latency_seconds_sum" in text

    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks", "Ticks", labelnames=("regime",))
        counter.labels(regime="qgreedy").inc(2)
        counter.labels(regime="deadline").inc(3)
        text = registry.render_prometheus()
        assert 'ticks{regime="qgreedy"} 2' in text
        assert 'ticks{regime="deadline"} 3' in text

    def test_reregistration_same_kind_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("again", "Again")
        assert registry.counter("again", "Again") is first

    def test_reregistration_with_other_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("clash", "Clash")
        with pytest.raises(ValueError, match="clash"):
            registry.gauge("clash", "Clash")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc", "Esc", labelnames=("who",))
        counter.labels(who='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert 'esc{who="a\\"b\\\\c\\nd"} 1' in text

    def test_failing_collector_is_skipped(self):
        registry = MetricsRegistry()
        registry.counter("fine", "Fine").inc()
        registry.register_collector(lambda: 1 / 0)
        text = registry.render_prometheus()
        assert "fine 1" in text

    def test_json_snapshot_matches_families(self):
        registry = MetricsRegistry()
        registry.counter("n", "N").inc(2)
        payload = json.loads(registry.render_json())
        assert payload["n"]["kind"] == "counter"
        assert payload["n"]["samples"][0]["value"] == 2


class TestTraceBuffer:
    def test_span_lifecycle_and_tail(self):
        buffer = TraceBuffer(capacity=4)
        trace = buffer.start("item-1", "qgreedy")
        trace.add("queued")
        trace.add("batched", reason="size", size=8)
        trace.add("scheduled", worker="w0")
        buffer.finish(trace, "completed")
        (exported,) = buffer.tail()
        stages = [event["stage"] for event in exported["events"]]
        assert stages == ["queued", "batched", "scheduled", "completed"]
        assert exported["status"] == "completed"
        assert exported["events"][1]["detail"] == {"reason": "size", "size": 8}

    def test_unknown_terminal_stage_raises(self):
        buffer = TraceBuffer()
        trace = buffer.start("item-1", "qgreedy")
        with pytest.raises(ValueError, match="terminal"):
            buffer.finish(trace, "vanished")

    def test_ring_evicts_oldest(self):
        buffer = TraceBuffer(capacity=2)
        for index in range(5):
            buffer.finish(buffer.start(f"item-{index}", "qgreedy"), "completed")
        assert len(buffer) == 2
        assert buffer.finished == 5
        assert buffer.dropped == 3
        assert [t["item_id"] for t in buffer.tail()] == ["item-3", "item-4"]

    def test_to_json_roundtrip(self):
        buffer = TraceBuffer(capacity=2)
        buffer.finish(buffer.start("item-1", "deadline"), "expired")
        payload = json.loads(buffer.to_json())
        assert payload["finished"] == 1
        assert payload["traces"][0]["status"] == "expired"


class TestInstrumentation:
    def test_bare_path_returns_none(self):
        assert installed() is None
        assert batch_observer("qgreedy", 8) is None

    def test_install_routes_ticks_into_registry(self):
        registry = MetricsRegistry()
        install(registry)
        observer = batch_observer("qgreedy", 8)
        observer.tick(0.002, 8)
        observer.tick(0.001, 5)
        observer.done()
        text = registry.render_prometheus()
        assert 'repro_sched_batches_total{regime="qgreedy"} 1' in text
        assert 'repro_sched_rounds_total{regime="qgreedy"} 2' in text
        assert 'repro_sched_models_executed_total{regime="qgreedy"} 13' in text
        assert 'repro_sched_batch_items_total{regime="qgreedy"} 8' in text

    def test_install_idempotent_and_uninstall_restores_bare(self):
        registry = MetricsRegistry()
        first = install(registry)
        assert install(registry) is first
        uninstall()
        assert installed() is None

    def test_schedulers_record_per_regime(self, engine, truth, items):
        registry = MetricsRegistry()
        install(registry)
        subset = items[:6]
        engine.label_batch(subset, LabelingSpec(), truth=truth)
        engine.label_batch(subset, LabelingSpec(deadline=0.5), truth=truth)
        engine.label_batch(
            subset,
            LabelingSpec(deadline=0.5, memory_budget=8000.0),
            truth=truth,
        )
        text = registry.render_prometheus()
        for regime in ("qgreedy", "deadline", "deadline_memory"):
            assert f'repro_sched_batches_total{{regime="{regime}"}} 1' in text
            assert f'repro_engine_items_total{{backend="BatchedBackend",regime="{regime}"}} 6' in text
        # Unconstrained Q-greedy executes every model on every item.
        zoo_size = len(engine.zoo)
        assert (
            f'repro_sched_models_executed_total{{regime="qgreedy"}} '
            f"{6 * zoo_size}" in text
        )


class TestMetricsServer:
    def test_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("up", "Up").inc()
        tracer = TraceBuffer()
        tracer.finish(tracer.start("item-1", "qgreedy"), "completed")
        with MetricsServer(registry, tracer) as server:
            base = server.url
            text = urllib.request.urlopen(f"{base}/metrics").read().decode()
            assert "up 1" in text
            as_json = json.load(urllib.request.urlopen(f"{base}/metrics.json"))
            assert as_json["up"]["samples"][0]["value"] == 1
            traces = json.load(urllib.request.urlopen(f"{base}/traces?n=5"))
            assert traces["finished"] == 1
            health = urllib.request.urlopen(f"{base}/healthz").read().decode()
            assert health.strip() == "ok"
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(f"{base}/nope")
            assert caught.value.code == 404

    def test_traces_404_without_tracer(self):
        with MetricsServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(f"{server.url}/traces")
            assert caught.value.code == 404

    def test_concurrent_scrapes(self):
        registry = MetricsRegistry()
        registry.counter("c", "C").inc()
        errors: list[Exception] = []

        def scrape(url: str) -> None:
            try:
                for _ in range(5):
                    urllib.request.urlopen(url).read()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        with MetricsServer(registry) as server:
            threads = [
                threading.Thread(target=scrape, args=(f"{server.url}/metrics",))
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []


class TestServiceIntegration:
    def test_service_exports_families_and_traces(self, engine, truth, items):
        registry = MetricsRegistry()
        tracer = TraceBuffer(capacity=64)
        install(registry)
        service = LabelingService(
            engine,
            batch_size=8,
            truth=truth,
            registry=registry,
            tracer=tracer,
            cache_size=64,
        )
        with service:
            futures = service.submit_many(items[:12])
            repeat = service.submit(items[0])  # coalesces or hits the cache
            for future in futures + [repeat]:
                future.result(timeout=10)
        text = registry.render_prometheus()
        assert 'repro_requests_total{outcome="completed"} 12' in text
        assert 'repro_slo_completed_total{regime="qgreedy"} 12' in text
        assert "repro_slo_deadline_miss_ratio" in text
        assert "repro_slo_time_to_first_result_seconds" in text
        assert "repro_queue_wait_seconds_count 12" in text
        assert "repro_cache_events_total" in text
        assert 'repro_sched_batches_total{regime="qgreedy"}' in text
        # Every settled request left a finished span with the full path.
        finished = tracer.tail()
        assert len(finished) == 13
        completed = [t for t in finished if t["status"] == "completed"]
        assert len(completed) == 12
        stages = [event["stage"] for event in completed[0]["events"]]
        assert stages == [
            "admitted", "queued", "batched", "scheduled", "completed",
        ]
        shortcut = [t for t in finished if t["status"] != "completed"]
        assert shortcut[0]["status"] in ("cache_hit", "coalesced")

    def test_expired_requests_count_against_slo(self, engine, truth, items):
        # submit_many settles impossible-deadline items through _resolve,
        # so they land in the SLO accumulator as deadline misses.
        min_cost = float(engine.zoo.times.min())
        service = LabelingService(
            engine, batch_size=4, truth=truth, spec=LabelingSpec(deadline=0.5)
        )
        with service:
            futures = service.submit_many(items[:2], deadline=min_cost / 2)
            for future in futures:
                with pytest.raises(Exception):
                    future.result(timeout=10)
        slo = service.snapshot().slo["deadline"]
        assert slo.expired == 2
        assert slo.completed == 0
        assert slo.deadline_miss_rate == 1.0

    def test_families_without_server(self, engine, truth, items):
        service = LabelingService(engine, batch_size=8, truth=truth)
        with service:
            for future in service.submit_many(items[:4]):
                future.result(timeout=10)
        names = {family.name for family in service_families(service)}
        assert {
            "repro_requests_total",
            "repro_batches_total",
            "repro_queue_depth",
            "repro_in_flight",
            "repro_slo_completed_total",
        } <= names


class TestTelemetryValidation:
    def test_unknown_counter_raises_value_error(self):
        telemetry = ServiceTelemetry()
        with pytest.raises(ValueError, match="completed"):
            telemetry.count("not_a_counter")

    def test_unknown_flush_reason_raises_value_error(self):
        telemetry = ServiceTelemetry()
        with pytest.raises(ValueError, match="regime_split"):
            telemetry.observe_flush(4, "panic")

    def test_unknown_outcome_raises_value_error(self):
        telemetry = ServiceTelemetry()
        with pytest.raises(ValueError, match="expired"):
            telemetry.observe_outcome("qgreedy", "vanished")

    def test_valid_names_still_count(self):
        telemetry = ServiceTelemetry()
        telemetry.count("completed", 2)
        telemetry.observe_flush(4, "size", regime="qgreedy")
        snapshot = telemetry.snapshot()
        assert snapshot.counters["completed"] == 2
        assert snapshot.flushes["size"] == 1


class TestLatencyHistogramEdges:
    def test_capacity_one_keeps_exactly_one_sample(self):
        histogram = LatencyHistogram(capacity=1, seed=0)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        stats = histogram.stats()
        assert stats.count == 4
        assert stats.p50 in (1.0, 2.0, 3.0, 4.0)

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(capacity=0)

    def test_post_capacity_replacement_bounds_reservoir(self):
        histogram = LatencyHistogram(capacity=8, seed=1)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert len(histogram._samples) == 8
        assert histogram.stats().count == 100

    def test_seeded_reservoirs_reproduce(self):
        def fill(seed: int) -> LatencyStats:
            histogram = LatencyHistogram(capacity=4, seed=seed)
            for value in range(50):
                histogram.observe(float(value))
            return histogram.stats()

        assert fill(7) == fill(7)

    def test_from_samples_count_override(self):
        stats = LatencyStats.from_samples([0.1, 0.2], count=1000)
        assert stats.count == 1000
        assert stats.max == 0.2

    def test_from_samples_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.p99 == 0.0
