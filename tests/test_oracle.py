"""GroundTruth cache: record/replay invariants and aggregate statistics."""

import numpy as np
import pytest

from repro.zoo.oracle import GroundTruth


class TestRecords:
    def test_every_item_recorded(self, truth, dataset):
        assert len(truth) == len(dataset)
        for item in dataset:
            assert item.item_id in truth

    def test_outputs_match_direct_execution(self, truth, zoo, dataset):
        for item in dataset[:15]:
            for j, model in enumerate(zoo):
                assert truth.output(item.item_id, j) == model.execute(item)

    def test_solo_values_match_valuable_sums(self, truth, zoo, dataset):
        for item in dataset[:25]:
            solo = truth.solo_values(item.item_id)
            for j in range(len(zoo)):
                ids, confs = truth.valuable(item.item_id, j)
                assert solo[j] == pytest.approx(confs.sum())
                assert len(ids) == len(confs)

    def test_total_value_is_max_confidence_union(self, truth, zoo, dataset):
        for item in dataset[:25]:
            rec = truth.record(item.item_id)
            best = np.zeros(len(zoo.space))
            for j in range(len(zoo)):
                ids, confs = truth.valuable(item.item_id, j)
                if len(ids):
                    np.maximum.at(best, ids, confs)
            assert rec.total_value == pytest.approx(best.sum())
            assert np.allclose(rec.best_confidence, best)

    def test_total_value_at_least_best_solo(self, truth, dataset):
        for item in dataset[:25]:
            rec = truth.record(item.item_id)
            assert rec.total_value >= rec.solo_values.max() - 1e-9

    def test_useful_models_mask(self, truth, dataset):
        rec = truth.record(dataset[0].item_id)
        assert (rec.useful_models == (rec.solo_values > 0)).all()

    def test_add_items_idempotent(self, zoo, dataset, world_config):
        gt = GroundTruth(zoo, dataset[:5], world_config)
        before = gt.record(dataset[0].item_id)
        gt.add_items(dataset[:5])
        assert gt.record(dataset[0].item_id) is before
        assert len(gt) == 5

    def test_incremental_addition(self, zoo, dataset, world_config):
        gt = GroundTruth(zoo, [], world_config)
        assert len(gt) == 0
        gt.add_items(dataset[:3])
        assert len(gt) == 3
        gt.add_items(dataset[3:6])
        assert len(gt) == 6

    def test_add_items_returns_newly_recorded_ids(
        self, zoo, dataset, world_config
    ):
        gt = GroundTruth(zoo, dataset[:2], world_config)
        added = gt.add_items(dataset[:4])
        assert added == [item.item_id for item in dataset[2:4]]
        assert gt.add_items(dataset[:4]) == []


class TestBatchRecording:
    def test_record_batch_returns_input_ordered_records(
        self, zoo, dataset, world_config
    ):
        gt = GroundTruth(zoo, [], world_config)
        records = gt.record_batch(dataset[:5])
        assert [r.item.item_id for r in records] == [
            item.item_id for item in dataset[:5]
        ]
        assert len(gt) == 5

    def test_record_batch_reuses_existing_records(
        self, zoo, dataset, world_config
    ):
        gt = GroundTruth(zoo, dataset[:3], world_config)
        before = gt.record(dataset[1].item_id)
        records = gt.record_batch(dataset[:3])
        assert records[1] is before


class TestEviction:
    def test_release_drops_record(self, zoo, dataset, world_config):
        gt = GroundTruth(zoo, dataset[:3], world_config)
        assert gt.release(dataset[0].item_id) is True
        assert dataset[0].item_id not in gt
        assert len(gt) == 2

    def test_release_missing_is_noop(self, zoo, dataset, world_config):
        gt = GroundTruth(zoo, dataset[:1], world_config)
        assert gt.release("no-such-item") is False
        assert len(gt) == 1

    def test_release_many_counts_presence(self, zoo, dataset, world_config):
        gt = GroundTruth(zoo, dataset[:4], world_config)
        ids = [item.item_id for item in dataset[:4]]
        assert gt.release_many(ids[:2] + ["ghost"]) == 2
        assert len(gt) == 2

    def test_released_item_can_be_rerecorded(self, zoo, dataset, world_config):
        """Record/release/re-record round-trips to identical outputs."""
        gt = GroundTruth(zoo, dataset[:1], world_config)
        item_id = dataset[0].item_id
        before = gt.output(item_id, 0)
        gt.release(item_id)
        gt.add_items(dataset[:1])
        assert gt.output(item_id, 0) == before


class TestAggregates:
    def test_useful_fraction_in_unit_interval(self, truth):
        fraction = truth.useful_execution_fraction()
        assert 0.0 < fraction < 1.0

    def test_optimal_fraction_below_one(self, truth):
        """The §II shape: the optimal policy skips real work."""
        fraction = truth.optimal_time_fraction()
        assert 0.0 < fraction < 0.7

    def test_empty_truth_aggregates(self, zoo, world_config):
        gt = GroundTruth(zoo, [], world_config)
        assert gt.useful_execution_fraction() == 0.0
        assert gt.optimal_time_fraction() == 0.0
