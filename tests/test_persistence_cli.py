"""Persistence round-trips and the CLI workflow."""

import numpy as np
import pytest

from repro.cli import main
from repro.persistence import load_ground_truth, save_ground_truth
from repro.zoo.builder import build_zoo
from repro.config import WorldConfig


class TestGroundTruthPersistence:
    def test_roundtrip_preserves_replay(self, truth, zoo, world_config, tmp_path):
        path = tmp_path / "gt.npz"
        save_ground_truth(truth, path)
        loaded = load_ground_truth(zoo, path, world_config)
        assert len(loaded) == len(truth)
        for item_id in list(truth.item_ids)[:20]:
            assert loaded.total_value(item_id) == pytest.approx(
                truth.total_value(item_id)
            )
            assert np.allclose(
                loaded.solo_values(item_id), truth.solo_values(item_id)
            )
            for j in range(len(zoo)):
                assert loaded.output(item_id, j) == truth.output(item_id, j)

    def test_zoo_mismatch_rejected(self, truth, world_config, tmp_path, space):
        path = tmp_path / "gt.npz"
        save_ground_truth(truth, path)
        other_zoo = build_zoo(
            WorldConfig(vocab_scale="mini", seed=world_config.seed + 1), space
        )
        # same names -> loads fine even with different seed (replay data wins)
        loaded = load_ground_truth(other_zoo, path, world_config)
        assert len(loaded) == len(truth)

    def test_wrong_scale_zoo_rejected(self, truth, tmp_path):
        path = tmp_path / "gt.npz"
        save_ground_truth(truth, path)
        full_zoo = build_zoo(WorldConfig(vocab_scale="full"))
        with pytest.raises(ValueError, match="zoo mismatch"):
            load_ground_truth(full_zoo, path)


class TestCLI:
    def test_zoo_command(self, capsys):
        assert main(["--scale", "mini", "zoo"]) == 0
        out = capsys.readouterr().out
        assert "10 models" in out

    def test_record_train_schedule_graph_workflow(self, tmp_path, capsys):
        gt_path = tmp_path / "gt.npz"
        agent_path = tmp_path / "agent.npz"
        base = ["--scale", "mini"]
        assert main(base + [
            "record", "--dataset", "mscoco2017", "--items", "80",
            "--out", str(gt_path),
        ]) == 0
        assert gt_path.exists()
        assert main(base + [
            "train", "--truth", str(gt_path), "--algo", "dqn",
            "--episodes", "30", "--hidden", "16", "--out", str(agent_path),
        ]) == 0
        assert agent_path.exists()
        assert main(base + [
            "schedule", "--truth", str(gt_path), "--agent", str(agent_path),
            "--algo", "dqn", "--hidden", "16", "--deadline", "0.3",
            "--items", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean value recall" in out
        assert main(base + [
            "graph", "--truth", str(gt_path), "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "lift" in out

    def test_schedule_with_memory(self, tmp_path, capsys):
        gt_path = tmp_path / "gt.npz"
        agent_path = tmp_path / "agent.npz"
        base = ["--scale", "mini"]
        main(base + [
            "record", "--dataset", "voc2012", "--items", "60",
            "--out", str(gt_path),
        ])
        main(base + [
            "train", "--truth", str(gt_path), "--algo", "dqn",
            "--episodes", "20", "--hidden", "16", "--out", str(agent_path),
        ])
        assert main(base + [
            "schedule", "--truth", str(gt_path), "--agent", str(agent_path),
            "--algo", "dqn", "--hidden", "16", "--deadline", "0.3",
            "--memory", "8000", "--items", "5", "--verbose",
        ]) == 0
        assert "memory=8000" in capsys.readouterr().out


class TestAtomicSave:
    def test_save_leaves_no_temp_residue_and_appends_npz(self, truth, tmp_path):
        save_ground_truth(truth, tmp_path / "bare")  # numpy convention: +.npz
        assert (tmp_path / "bare.npz").exists()
        assert [p.name for p in tmp_path.iterdir()] == ["bare.npz"]

    def test_failed_save_leaves_previous_archive_loadable(
        self, truth, zoo, world_config, tmp_path, monkeypatch
    ):
        import os

        path = tmp_path / "gt.npz"
        save_ground_truth(truth, path)
        before = path.read_bytes()
        monkeypatch.setattr(
            os, "replace", lambda *a: (_ for _ in ()).throw(OSError("disk full"))
        )
        with pytest.raises(OSError, match="disk full"):
            save_ground_truth(truth, path)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["gt.npz"]
        loaded = load_ground_truth(zoo, path, world_config)
        assert len(loaded) == len(truth)


class TestManifestResumeCLI:
    def test_schedule_manifest_then_resume(self, tmp_path, capsys):
        from repro.durability import RunManifest

        gt_path = tmp_path / "gt.npz"
        agent_path = tmp_path / "agent.npz"
        manifest_path = tmp_path / "run.json"
        base = ["--scale", "mini"]
        assert main(base + [
            "record", "--dataset", "mscoco2017", "--items", "60",
            "--out", str(gt_path),
        ]) == 0
        assert main(base + [
            "train", "--truth", str(gt_path), "--algo", "dqn",
            "--episodes", "20", "--hidden", "16", "--out", str(agent_path),
        ]) == 0
        schedule = base + [
            "schedule", "--truth", str(gt_path), "--agent", str(agent_path),
            "--algo", "dqn", "--hidden", "16", "--deadline", "0.3",
            "--items", "8", "--manifest", str(manifest_path),
        ]
        assert main(schedule) == 0
        capsys.readouterr()
        manifest = RunManifest.load(manifest_path)
        assert manifest.done == 8 and manifest.remaining == []

        # simulate a kill: forget the last three completions
        for item_id in manifest.item_ids[-3:]:
            del manifest.completed[item_id]
        manifest.save()
        assert main(schedule + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resuming" in out
        assert "(5 resumed from manifest)" in out
        reloaded = RunManifest.load(manifest_path)
        assert reloaded.done == 8 and reloaded.remaining == []

        # a fresh (non-resume) run refuses to clobber an existing manifest
        with pytest.raises(SystemExit, match="--resume"):
            main(schedule)

        # fully-done manifest: resume is a clean no-op
        assert main(schedule + ["--resume"]) == 0
        assert "nothing left to schedule" in capsys.readouterr().out

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(SystemExit, match="--resume requires --manifest"):
            main([
                "--scale", "mini", "schedule", "--truth", "x", "--agent", "y",
                "--resume",
            ])
