"""Persistence round-trips and the CLI workflow."""

import numpy as np
import pytest

from repro.cli import main
from repro.persistence import load_ground_truth, save_ground_truth
from repro.zoo.builder import build_zoo
from repro.config import WorldConfig


class TestGroundTruthPersistence:
    def test_roundtrip_preserves_replay(self, truth, zoo, world_config, tmp_path):
        path = tmp_path / "gt.npz"
        save_ground_truth(truth, path)
        loaded = load_ground_truth(zoo, path, world_config)
        assert len(loaded) == len(truth)
        for item_id in list(truth.item_ids)[:20]:
            assert loaded.total_value(item_id) == pytest.approx(
                truth.total_value(item_id)
            )
            assert np.allclose(
                loaded.solo_values(item_id), truth.solo_values(item_id)
            )
            for j in range(len(zoo)):
                assert loaded.output(item_id, j) == truth.output(item_id, j)

    def test_zoo_mismatch_rejected(self, truth, world_config, tmp_path, space):
        path = tmp_path / "gt.npz"
        save_ground_truth(truth, path)
        other_zoo = build_zoo(
            WorldConfig(vocab_scale="mini", seed=world_config.seed + 1), space
        )
        # same names -> loads fine even with different seed (replay data wins)
        loaded = load_ground_truth(other_zoo, path, world_config)
        assert len(loaded) == len(truth)

    def test_wrong_scale_zoo_rejected(self, truth, tmp_path):
        path = tmp_path / "gt.npz"
        save_ground_truth(truth, path)
        full_zoo = build_zoo(WorldConfig(vocab_scale="full"))
        with pytest.raises(ValueError, match="zoo mismatch"):
            load_ground_truth(full_zoo, path)


class TestCLI:
    def test_zoo_command(self, capsys):
        assert main(["--scale", "mini", "zoo"]) == 0
        out = capsys.readouterr().out
        assert "10 models" in out

    def test_record_train_schedule_graph_workflow(self, tmp_path, capsys):
        gt_path = tmp_path / "gt.npz"
        agent_path = tmp_path / "agent.npz"
        base = ["--scale", "mini"]
        assert main(base + [
            "record", "--dataset", "mscoco2017", "--items", "80",
            "--out", str(gt_path),
        ]) == 0
        assert gt_path.exists()
        assert main(base + [
            "train", "--truth", str(gt_path), "--algo", "dqn",
            "--episodes", "30", "--hidden", "16", "--out", str(agent_path),
        ]) == 0
        assert agent_path.exists()
        assert main(base + [
            "schedule", "--truth", str(gt_path), "--agent", str(agent_path),
            "--algo", "dqn", "--hidden", "16", "--deadline", "0.3",
            "--items", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean value recall" in out
        assert main(base + [
            "graph", "--truth", str(gt_path), "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "lift" in out

    def test_schedule_with_memory(self, tmp_path, capsys):
        gt_path = tmp_path / "gt.npz"
        agent_path = tmp_path / "agent.npz"
        base = ["--scale", "mini"]
        main(base + [
            "record", "--dataset", "voc2012", "--items", "60",
            "--out", str(gt_path),
        ])
        main(base + [
            "train", "--truth", str(gt_path), "--algo", "dqn",
            "--episodes", "20", "--hidden", "16", "--out", str(agent_path),
        ])
        assert main(base + [
            "schedule", "--truth", str(gt_path), "--agent", str(agent_path),
            "--algo", "dqn", "--hidden", "16", "--deadline", "0.3",
            "--memory", "8000", "--items", "5", "--verbose",
        ]) == 0
        assert "memory=8000" in capsys.readouterr().out
