"""ProcessPoolBackend: parity, snapshot lifecycle, crash handling, serving.

Set ``REPRO_MP_CONTEXT=spawn`` (the CI spawn leg does) to run every
pool-backed test under that start method; unset, the platform default
(fork on Linux) applies.
"""

import multiprocessing
import os

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.engine import (
    LabelingEngine,
    ProcessPoolBackend,
    WorldSnapshot,
    make_backend,
)
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import (
    AgentPredictor,
    OraclePredictor,
    QValuePredictor,
)
from repro.serving import LabelingService
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import GroundTruth


@pytest.fixture(scope="module")
def predictor(trained, zoo):
    return AgentPredictor(trained.agent, len(zoo))


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:12]


def engine_for(zoo, predictor, world_config, backend):
    return LabelingEngine(zoo, predictor, world_config, backend=backend)


def process_backend(**kwargs):
    """ProcessPoolBackend honoring the ``REPRO_MP_CONTEXT`` env override."""
    method = os.environ.get("REPRO_MP_CONTEXT")
    if method:
        kwargs.setdefault("mp_context", multiprocessing.get_context(method))
    return ProcessPoolBackend(**kwargs)


#: All three paper regimes plus the capped q-greedy variant.
REGIMES = (
    {},
    {"max_models": 4},
    {"deadline": 0.35},
    {"deadline": 0.5, "memory_budget": 8000.0},
)


class PoisonPredictor(QValuePredictor):
    """Picklable predictor that raises on one designated item."""

    def __init__(self, n_models: int, poison: str | None = None):
        self.n_models = n_models
        self.poison = poison

    def predict(self, state):
        if state.item_id == self.poison:
            raise RuntimeError(f"poisoned item {state.item_id}")
        return np.zeros(self.n_models)


class WorkerKiller(QValuePredictor):
    """Picklable predictor that hard-kills its worker on one item."""

    def __init__(self, n_models: int, victim: str | None = None):
        self.n_models = n_models
        self.victim = victim

    def predict(self, state):
        if state.item_id == self.victim:
            os._exit(13)
        return np.zeros(self.n_models)


class TestProcessParity:
    """Process traces must equal SerialBackend's for every sharding."""

    @pytest.mark.parametrize(
        "workers,chunk_size",
        [(1, None), (2, None), (2, 1), (3, 5)],
        ids=["w1", "w2", "w2-chunk1", "w3-chunk5"],
    )
    def test_trace_identical_to_serial_all_regimes(
        self, zoo, world_config, predictor, truth, items, workers, chunk_size
    ):
        serial = engine_for(zoo, predictor, world_config, "serial")
        backend = process_backend(max_workers=workers, chunk_size=chunk_size)
        with backend:
            process = engine_for(zoo, predictor, world_config, backend)
            for regime in REGIMES:
                ref = serial.label_batch(items, truth=truth, **regime)
                got = process.label_batch(items, truth=truth, **regime)
                assert len(got) == len(ref) == len(items)
                for r, g in zip(ref, got):
                    assert g.item_id == r.item_id
                    assert g.trace.executions == r.trace.executions
                    assert g.trace.total_value == r.trace.total_value
                    assert g.label_names == r.label_names

    def test_ephemeral_truth_ships_chunk_deltas(
        self, zoo, world_config, predictor, truth, items
    ):
        # Without a shared truth the pool is keyed on the zoo/predictor,
        # so records unknown to the snapshot travel with each chunk and
        # traces still match the serial run on a shared truth (the world
        # is deterministic per item id).
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        with process_backend(max_workers=2) as backend:
            engine = engine_for(zoo, predictor, world_config, backend)
            first = engine.label_batch(items)
            second = engine.label_batch(items)  # same pool, fresh truths
        for r, g in zip(ref, first):
            assert g.trace.executions == r.trace.executions
        for r, g in zip(ref, second):
            assert g.trace.executions == r.trace.executions

    def test_oracle_predictor_crosses_the_process_boundary(
        self, zoo, world_config, truth, items
    ):
        oracle = OraclePredictor(truth)
        ref = engine_for(zoo, oracle, world_config, "serial").label_batch(
            items[:6], truth=truth
        )
        with process_backend(max_workers=2) as backend:
            got = engine_for(zoo, oracle, world_config, backend).label_batch(
                items[:6], truth=truth
            )
        for r, g in zip(ref, got):
            assert g.trace.executions == r.trace.executions


class TestPoolLifecycle:
    def test_pool_and_snapshot_reused_across_jobs(
        self, zoo, world_config, predictor, truth, items
    ):
        backend = process_backend(max_workers=2)
        with backend:
            engine = engine_for(zoo, predictor, world_config, backend)
            engine.label_batch(items, truth=truth)
            pool_after_first = backend._pool
            engine.label_batch(items, deadline=0.4, truth=truth)
            assert backend._pool is pool_after_first  # no respawn, no re-ship
            counts = backend.dispatch_counts
            assert sum(counts.values()) == 2 * len(items)
        assert backend._pool is None  # context exit closed the pool

    def test_single_item_takes_the_serial_path(
        self, zoo, world_config, predictor, truth, items
    ):
        # No pool spin-up for singleton jobs.
        backend = process_backend(max_workers=2)
        with backend:
            engine = engine_for(zoo, predictor, world_config, backend)
            [result] = engine.label_batch(items[:1], truth=truth)
            assert result.item_id == items[0].item_id
            assert backend._pool is None

    def test_sequential_world_switch_respawns(
        self, zoo, world_config, trained, truth, items
    ):
        # A new predictor object is a new world: with nothing in flight
        # the pool tears down and respawns with a fresh snapshot.
        first = AgentPredictor(trained.agent, len(zoo))
        second = AgentPredictor(trained.agent, len(zoo))
        with process_backend(max_workers=2) as backend:
            engine_for(zoo, first, world_config, backend).label_batch(
                items[:4], truth=truth
            )
            old_pool = backend._pool
            engine_for(zoo, second, world_config, backend).label_batch(
                items[:4], truth=truth
            )
            assert backend._pool is not old_pool

    def test_world_switch_while_in_flight_raises(
        self, zoo, world_config, trained, truth, items
    ):
        # Concurrent jobs from different worlds must fail loudly instead
        # of cancelling each other's chunks (simulated in-flight job).
        first = AgentPredictor(trained.agent, len(zoo))
        second = AgentPredictor(trained.agent, len(zoo))
        with process_backend(max_workers=2) as backend:
            engine_for(zoo, first, world_config, backend).label_batch(
                items[:4], truth=truth
            )
            backend._active += 1  # another thread mid-run()
            try:
                with pytest.raises(RuntimeError, match="world-affine"):
                    engine_for(zoo, second, world_config, backend).label_batch(
                        items[:4], truth=truth
                    )
            finally:
                backend._active -= 1
            # same-world traffic was never blocked
            engine_for(zoo, first, world_config, backend).label_batch(
                items[:4], truth=truth
            )

    def test_caller_built_backend_survives_service_shutdown(
        self, zoo, world_config, predictor, truth, items
    ):
        # The service closes only backends it constructed from a registry
        # name; a caller-built instance may be shared and stays open.
        engine = engine_for(zoo, predictor, world_config, "batched")
        with process_backend(max_workers=2) as backend:
            service = LabelingService(
                engine, backend=backend, batch_size=4, workers=2, truth=truth
            )
            with service:
                [f.result(timeout=60) for f in service.submit_many(items[:8])]
                service.drain()
            assert backend._pool is not None  # shutdown left it alive
            # and it still runs jobs afterwards
            results = engine_for(zoo, predictor, world_config, backend).label_batch(
                items[:4], truth=truth
            )
            assert len(results) == 4

    def test_make_backend_kwargs(self):
        with pytest.warns(DeprecationWarning, match="typed ProcessConfig"):
            backend = make_backend("process", max_workers=3, chunk_size=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 3
        assert backend.chunk_size == 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ProcessPoolBackend(chunk_size=0)


class TestWorldSnapshot:
    def test_restore_reproduces_truth_and_predictor(
        self, zoo, world_config, predictor, truth, items
    ):
        snapshot = WorldSnapshot.capture(truth, predictor)
        assert snapshot.zoo_payload is None  # standard build: config is enough
        restored_truth, restored_predictor = snapshot.restore()
        assert set(restored_truth.item_ids) == set(truth.item_ids)
        from repro.core.state import LabelingState

        for item in items[:3]:
            state = LabelingState(truth, item.item_id)
            mirror = LabelingState(restored_truth, item.item_id)
            np.testing.assert_allclose(
                restored_predictor.predict(mirror),
                predictor.predict(state),
                rtol=0,
                atol=0,
            )

    def test_custom_zoo_falls_back_to_pickle(
        self, zoo, world_config, dataset, predictor
    ):
        # A zoo that build_zoo(config) cannot reproduce must travel whole.
        subset = ModelZoo(zoo.models[:5], zoo.space)
        truth = GroundTruth(subset, list(dataset)[:2], world_config)
        agent = make_agent(
            "dueling_dqn", obs_dim=len(zoo.space), n_actions=6, hidden_size=16
        )
        snapshot = WorldSnapshot.capture(truth, AgentPredictor(agent, 5))
        assert snapshot.zoo_payload is not None
        restored_truth, _ = snapshot.restore()
        assert restored_truth.zoo.names == subset.names

    def test_unpicklable_predictor_is_rejected(self, truth):
        class Local(QValuePredictor):  # local classes cannot pickle
            def predict(self, state):  # pragma: no cover
                return np.zeros(1)

        with pytest.raises(TypeError, match="cannot snapshot predictor"):
            WorldSnapshot.capture(truth, Local())


class TestCrashPropagation:
    def test_poisoned_item_fails_the_job_not_the_pool(
        self, zoo, world_config, truth, items
    ):
        poison = PoisonPredictor(len(zoo), poison=items[1].item_id)
        with process_backend(max_workers=2, chunk_size=2) as backend:
            engine = engine_for(zoo, poison, world_config, backend)
            with pytest.raises(RuntimeError, match="poisoned item"):
                engine.label_batch(items[:6], truth=truth)
            # The pool survived: a job avoiding the poisoned item runs.
            clean = engine.label_batch(items[2:6], truth=truth)
            assert [r.item_id for r in clean] == [i.item_id for i in items[2:6]]

    def test_dead_worker_breaks_the_job_then_pool_respawns(
        self, zoo, world_config, truth, items
    ):
        killer = WorkerKiller(len(zoo), victim=items[0].item_id)
        with process_backend(max_workers=2, chunk_size=2) as backend:
            engine = engine_for(zoo, killer, world_config, backend)
            with pytest.raises(BrokenProcessPool):
                engine.label_batch(items[:4], truth=truth)
            assert backend._pool is None  # broken pool was discarded
            # The same backend recovers by respawning for the next job.
            survivors = engine.label_batch(items[1:5], truth=truth)
            assert len(survivors) == 4


class TestServiceProcessBackend:
    def test_service_end_to_end_with_cache(
        self, zoo, world_config, predictor, truth, items
    ):
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        engine = engine_for(zoo, predictor, world_config, "batched")
        service = LabelingService(
            engine,
            backend="process",
            batch_size=4,
            max_wait=0.005,
            workers=2,
            truth=truth,
            cache_size=128,
        )
        assert isinstance(service.engine.backend, ProcessPoolBackend)
        assert service.engine is not engine  # caller's engine untouched
        with service:
            first = [f.result(timeout=60) for f in service.submit_many(items)]
            again = [f.result(timeout=60) for f in service.submit_many(items)]
            service.drain()
        for r, g in zip(ref, first):
            assert g.item_id == r.item_id
            assert g.trace.executions == r.trace.executions
        for r, g in zip(first, again):
            assert g.item_id == r.item_id
        snapshot = service.snapshot()
        assert snapshot.counters["failed"] == 0
        # The replay round was answered by the cache: a resolved entry
        # counts as a hit, one whose settle is mid-flight coalesces.
        assert (
            snapshot.counters["cache_hit"] + snapshot.counters["coalesced"]
            == len(items)
        )
        # Per-worker dispatch counters name the scheduling processes.
        assert snapshot.workers
        assert all(worker.startswith("pid") for worker in snapshot.workers)
        assert sum(snapshot.workers.values()) >= len(items)
        # Shutdown closed the service-owned process pool.
        assert service.engine.backend._pool is None

    def test_unrecorded_items_on_shared_truth(
        self, zoo, world_config, predictor, items
    ):
        # Empty shared truth + novel items: the snapshot is captured
        # while worker threads are still recording, post-snapshot records
        # travel as chunk deltas, and parent-side refcounting leaves the
        # shared cache empty afterwards.
        shared = GroundTruth(zoo, [], world_config)
        engine = engine_for(zoo, predictor, world_config, "batched")
        service = LabelingService(
            engine,
            backend="process",
            batch_size=3,
            max_wait=0.005,
            workers=2,
            truth=shared,
        )
        with service:
            results = [f.result(timeout=60) for f in service.submit_many(items)]
            service.drain()
        assert [r.item_id for r in results] == [i.item_id for i in items]
        assert service.snapshot().counters["failed"] == 0
        assert len(shared) == 0
