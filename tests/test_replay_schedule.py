"""Replay buffer ring semantics + epsilon schedule, incl. hypothesis checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.schedule import EpsilonSchedule


def make_transition(i: int, obs_dim: int = 4, n_actions: int = 3) -> Transition:
    return Transition(
        obs=np.full(obs_dim, i, dtype=np.float32),
        action=i % n_actions,
        reward=float(i),
        next_obs=np.full(obs_dim, i + 1, dtype=np.float32),
        done=(i % 5 == 0),
        next_valid=np.ones(n_actions, dtype=bool),
        next_action=(i + 1) % n_actions,
    )


class TestReplayBuffer:
    def test_push_grows_until_capacity(self):
        buf = ReplayBuffer(capacity=5, obs_dim=4, n_actions=3)
        for i in range(4):
            buf.push(make_transition(i))
        assert len(buf) == 4 and not buf.is_full
        buf.push(make_transition(4))
        assert buf.is_full
        buf.push(make_transition(5))
        assert len(buf) == 5  # capacity caps size

    def test_ring_overwrites_oldest(self):
        buf = ReplayBuffer(capacity=3, obs_dim=4, n_actions=3)
        for i in range(5):
            buf.push(make_transition(i))
        batch = buf.sample(100)
        # rewards present must be from transitions 2, 3, 4
        assert set(np.unique(batch.rewards)) <= {2.0, 3.0, 4.0}

    def test_sample_columns_aligned(self):
        buf = ReplayBuffer(capacity=10, obs_dim=4, n_actions=3, seed=1)
        for i in range(10):
            buf.push(make_transition(i))
        batch = buf.sample(32)
        for k in range(len(batch)):
            i = int(batch.rewards[k])
            assert (batch.obs[k] == i).all()
            assert (batch.next_obs[k] == i + 1).all()
            assert batch.actions[k] == i % 3
            assert batch.dones[k] == (i % 5 == 0)
            assert batch.next_actions[k] == (i + 1) % 3

    def test_sample_empty_raises(self):
        buf = ReplayBuffer(capacity=3, obs_dim=4, n_actions=3)
        with pytest.raises(RuntimeError):
            buf.sample(1)

    def test_set_last_next_action(self):
        buf = ReplayBuffer(capacity=3, obs_dim=4, n_actions=3)
        buf.push(make_transition(0))
        buf.set_last_next_action(2)
        batch = buf.sample(10)
        assert (batch.next_actions == 2).all()

    def test_set_last_next_action_empty_raises(self):
        buf = ReplayBuffer(capacity=3, obs_dim=4, n_actions=3)
        with pytest.raises(RuntimeError):
            buf.set_last_next_action(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0, obs_dim=4, n_actions=3)

    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(1, 20),
        pushes=st.integers(0, 60),
        batch=st.integers(1, 50),
    )
    def test_size_invariant(self, capacity, pushes, batch):
        buf = ReplayBuffer(capacity=capacity, obs_dim=2, n_actions=2)
        for i in range(pushes):
            buf.push(make_transition(i, obs_dim=2, n_actions=2))
        assert len(buf) == min(capacity, pushes)
        if pushes:
            sampled = buf.sample(batch)
            assert len(sampled) == min(batch, len(buf))


class TestEpsilonSchedule:
    def test_linear_decay_endpoints(self):
        sched = EpsilonSchedule(1.0, 0.1, 100)
        assert sched.value(0) == pytest.approx(1.0)
        assert sched.value(100) == pytest.approx(0.1)
        assert sched.value(10_000) == pytest.approx(0.1)

    def test_midpoint(self):
        sched = EpsilonSchedule(1.0, 0.0, 100)
        assert sched.value(50) == pytest.approx(0.5)

    @settings(max_examples=30, deadline=None)
    @given(
        start=st.floats(0.5, 1.0),
        end=st.floats(0.0, 0.4),
        steps=st.integers(1, 1000),
    )
    def test_monotone_nonincreasing(self, start, end, steps):
        sched = EpsilonSchedule(start, end, steps)
        values = [sched.value(s) for s in range(0, steps + 10, max(1, steps // 7))]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        assert all(end - 1e-12 <= v <= start + 1e-12 for v in values)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EpsilonSchedule(0.1, 0.5, 10)  # end > start
        with pytest.raises(ValueError):
            EpsilonSchedule(1.0, 0.1, 0)
