"""The result cache: LRU bounds, single-flight coalescing, and its
interaction with service admission and the shared-truth lifecycle."""

import threading
from concurrent.futures import Future

import pytest

from repro.engine import LabelingEngine
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import (
    DeadlineExpired,
    LabelingService,
    LabelingSpec,
    ResultCache,
    ServiceStopped,
)
from repro.zoo.oracle import GroundTruth


@pytest.fixture(scope="module")
def engine(zoo, space, world_config):
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return LabelingEngine(zoo, AgentPredictor(agent, len(zoo)), world_config)


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:24]


def cached_service(engine, truth, **kwargs):
    kwargs.setdefault("cache_size", 64)
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("max_wait", 0.005)
    return LabelingService(engine, truth=truth, **kwargs)


class TestResultCacheUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(0)

    def test_claim_join_hit_transitions(self):
        cache = ResultCache(4)
        leader = Future()
        outcome, payload = cache.begin(("x", None), leader)
        assert outcome == "claim" and payload is leader
        follower = Future()
        outcome, payload = cache.begin(("x", None), follower)
        assert outcome == "join" and payload is leader
        cache.settle(("x", None), result="labeled-x")
        outcome, payload = cache.begin(("x", None), Future())
        assert outcome == "hit" and payload == "labeled-x"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.coalesced) == (1, 1, 1)
        assert stats.inflight == 0 and stats.size == 1
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert "hit rate" in stats.format()

    def test_error_settle_releases_claim_without_caching(self):
        cache = ResultCache(4)
        cache.begin(("x", None), Future())
        cache.settle(("x", None), error=RuntimeError("boom"))
        assert ("x", None) not in cache
        outcome, _ = cache.begin(("x", None), Future())
        assert outcome == "claim"  # a later submission retries

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(2)
        for key, value in (("a", 1), ("b", 2)):
            cache.begin((key, None), Future())
            cache.settle((key, None), result=value)
        assert cache.begin(("a", None), Future())[0] == "hit"  # refresh a
        cache.begin(("c", None), Future())
        cache.settle(("c", None), result=3)  # evicts b, not a
        assert ("a", None) in cache and ("c", None) in cache
        assert ("b", None) not in cache
        assert cache.stats().evictions == 1
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_eviction_leaves_inflight_claim_alone(self):
        # The satellite interaction: a key can be evicted from the LRU
        # while its *re-flight* is claimed; the claim must survive and
        # later settle normally.
        cache = ResultCache(1)
        cache.begin(("a", None), Future())
        cache.settle(("a", None), result=1)
        leader = Future()
        assert cache.begin(("a", None), leader)[0] == "hit"
        # a is cached AND being recomputed (e.g. hit raced with eviction)
        refetch = Future()
        cache.begin(("b", None), Future())
        cache.settle(("b", None), result=2)  # evicts a
        assert ("a", None) not in cache
        outcome, payload = cache.begin(("a", None), refetch)
        assert outcome == "claim"
        assert cache.begin(("a", None), Future()) == ("join", refetch)
        cache.settle(("a", None), result=10)
        assert cache.begin(("a", None), Future()) == ("hit", 10)

    def test_exactly_one_claim_under_concurrent_begin(self):
        cache = ResultCache(8)
        outcomes = []
        barrier = threading.Barrier(8)

        def contender():
            future = Future()
            barrier.wait()
            outcomes.append(cache.begin(("hot", None), future))

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        claims = [p for o, p in outcomes if o == "claim"]
        joins = [p for o, p in outcomes if o == "join"]
        assert len(claims) == 1 and len(joins) == 7
        assert all(p is claims[0] for p in joins)  # one shared future
        assert cache.stats().coalesced == 7


class TestServiceCacheIntegration:
    def test_repeat_submission_skips_scheduling(self, engine, truth, items):
        service = cached_service(engine, truth)
        with service:
            first = service.submit(items[0], LabelingSpec(deadline=0.35))
            result = first.result(timeout=10)
            again = service.submit(items[0], LabelingSpec(deadline=0.35))
            assert again.done()  # answered inline, never queued
            assert again.result() is result
        counters = service.snapshot().counters
        assert counters["cache_miss"] == 1
        assert counters["cache_hit"] == 1
        assert counters["submitted"] == 1  # the hit never hit the queue
        assert counters["completed"] == 1

    def test_concurrent_duplicates_coalesce_to_one_flight(
        self, engine, truth, items
    ):
        # Five submissions of one item queued before start(): one claim,
        # four joins, a single engine dispatch for all five futures.
        service = cached_service(engine, truth, batch_size=8, max_wait=0.005)
        dispatched = []
        inner = service._label_batch
        service._label_batch = lambda batch, spec: (
            dispatched.append([i.item_id for i in batch]),
            inner(batch, spec),
        )[1]
        futures = [service.submit(items[0]) for _ in range(5)]
        with service:
            results = [f.result(timeout=10) for f in futures]
        assert len({id(r) for r in results}) == 1  # the shared result
        assert sum(ids.count(items[0].item_id) for ids in dispatched) == 1
        counters = service.snapshot().counters
        assert counters["cache_miss"] == 1
        assert counters["coalesced"] == 4
        assert counters["submitted"] == 1

    def test_distinct_batch_keys_do_not_share_results(
        self, engine, truth, items
    ):
        service = cached_service(engine, truth)
        with service:
            greedy = service.submit(items[0], LabelingSpec()).result(timeout=10)
            bounded = service.submit(
                items[0], LabelingSpec(deadline=0.35)
            ).result(timeout=10)
        assert greedy is not bounded  # one item, two regimes, two flights
        counters = service.snapshot().counters
        assert counters["cache_miss"] == 2
        assert counters["cache_hit"] == 0

    def test_submit_many_routes_duplicates_through_cache(
        self, engine, truth, items
    ):
        service = cached_service(engine, truth)
        batch = [items[0], items[0], items[1]]
        with service:
            futures = service.submit_many(batch)
            results = [f.result(timeout=10) for f in futures]
        assert [r.item_id for r in results] == [i.item_id for i in batch]
        assert results[0] is results[1]
        counters = service.snapshot().counters
        assert counters["cache_miss"] == 2
        assert counters["coalesced"] == 1
        assert counters["submitted"] == 2
        assert counters["submitted_many"] == 1

    def test_cache_is_partitioned_by_tenant(self, engine, truth, items):
        # Cross-tenant isolation regression: a tenant-qualified spec has a
        # tenant-qualified cache key, so tenant b's first submission of an
        # item tenant a already labeled is a miss (fresh flight), while a
        # repeat from tenant a is a hit on a's own entry.
        service = cached_service(engine, truth)
        with service:
            spec_a = LabelingSpec(deadline=0.35, tenant="a")
            spec_b = LabelingSpec(deadline=0.35, tenant="b")
            first = service.submit(items[0], spec_a).result(timeout=10)
            repeat = service.submit(items[0], spec_a)
            assert repeat.done() and repeat.result() is first
            other = service.submit(items[0], spec_b).result(timeout=10)
            assert other is not first
        counters = service.snapshot().counters
        assert counters["cache_miss"] == 2  # one flight per tenant
        assert counters["cache_hit"] == 1

    def test_eviction_and_reflight_keep_shared_truth_clean(
        self, engine, zoo, world_config, items
    ):
        # The satellite regression: evict a hot item's cached result while
        # traffic for it is still arriving, re-flight it, coalesce a
        # duplicate onto the re-flight — the refcounted record/release
        # lifecycle must end with the shared truth empty (no leaked or
        # double-released records) and every future correct.
        shared = GroundTruth(zoo, [], world_config)
        service = LabelingService(
            engine,
            truth=shared,
            cache_size=1,
            batch_size=4,
            max_wait=0.005,
            deadline=0.35,
            workers=2,
        )
        with service:
            hot = service.submit(items[0]).result(timeout=10)
            assert service.submit(items[0]).result(timeout=10) is hot
            service.submit(items[1]).result(timeout=10)  # evicts items[0]
            assert service.cache.stats().evictions == 1
            # re-flight the evicted key with a coalescing duplicate
            futures = service.submit_many([items[0], items[0]])
            results = [f.result(timeout=10) for f in futures]
        assert results[0] is results[1]
        assert results[0] is not hot  # recomputed after eviction
        assert results[0].trace.executions == hot.trace.executions
        assert len(shared) == 0  # every service-recorded item was released
        counters = service.snapshot().counters
        assert counters["failed"] == 0
        assert counters["cache_hit"] == 1
        assert counters["coalesced"] == 1
        assert counters["cache_miss"] == 3  # items[0], items[1], re-flight

    def test_admission_failure_fails_joined_futures_and_releases_claim(
        self, engine, truth, items, zoo
    ):
        # Bulk-submit the same item twice with an impossible admission
        # deadline: the claim expires at admission, the joined duplicate
        # inherits the failure, and the key is immediately claimable again.
        min_cost = float(zoo.times.min())
        service = cached_service(engine, truth)
        with service:
            futures = service.submit_many(
                [items[0], items[0]], deadline=min_cost / 2
            )
            for future in futures:
                with pytest.raises(DeadlineExpired):
                    future.result(timeout=10)
            assert service.cache.stats().inflight == 0
            retry = service.submit(items[0])  # fresh claim, no deadline
            assert retry.result(timeout=10).item_id == items[0].item_id
        counters = service.snapshot().counters
        assert counters["expired"] == 1  # one queue admission, one failure
        assert counters["coalesced"] == 1
        assert counters["completed"] == 1

    def test_shutdown_releases_inflight_claims(self, engine, truth, items):
        service = cached_service(engine, truth)
        future = service.submit(items[0])  # claimed + queued, never started
        service.shutdown()
        with pytest.raises(ServiceStopped):
            future.result(timeout=10)
        assert service.cache.stats().inflight == 0

    def test_cache_disabled_by_default(self, engine, truth, items):
        service = LabelingService(engine, truth=truth, deadline=0.35)
        assert service.cache is None
        with service:
            service.submit(items[0]).result(timeout=10)
            repeat = service.submit(items[0])
            assert not repeat.done() or repeat.result(timeout=10) is not None
            repeat.result(timeout=10)
        counters = service.snapshot().counters
        assert counters["cache_hit"] == 0 and counters["cache_miss"] == 0
        assert counters["submitted"] == 2  # both went through the queue

    def test_cache_and_cache_size_both_rejected(self, engine):
        with pytest.raises(ValueError, match="not both"):
            LabelingService(engine, cache=ResultCache(4), cache_size=4)

    def test_cache_line_in_telemetry_report(self, engine, truth, items):
        service = cached_service(engine, truth)
        with service:
            service.submit(items[0]).result(timeout=10)
            service.submit(items[0]).result(timeout=10)
        assert "cache" in service.snapshot().format()
