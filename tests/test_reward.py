"""Reward function Eq. (3): smoothing, theta, punishment, END."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reward import (
    EMPTY_PUNISHMENT,
    END_REWARD,
    RewardConfig,
    reward_for_output,
)

confidences = st.lists(
    st.floats(min_value=0.5, max_value=0.99), min_size=1, max_size=70
).map(np.asarray)


class TestEquation3:
    def test_empty_output_is_punished(self):
        assert reward_for_output(np.asarray([])) == EMPTY_PUNISHMENT == -1.0

    def test_end_reward_is_zero(self):
        assert END_REWARD == 0.0

    @settings(max_examples=60, deadline=None)
    @given(confs=confidences)
    def test_log_reward_formula(self, confs):
        expected = np.log(confs.sum() + 1.0)
        assert reward_for_output(confs) == pytest.approx(expected)

    @settings(max_examples=60, deadline=None)
    @given(confs=confidences, theta=st.floats(min_value=0.1, max_value=20))
    def test_theta_scales_inside_log(self, confs, theta):
        expected = np.log(theta * confs.sum() + 1.0)
        assert reward_for_output(confs, theta=theta) == pytest.approx(expected)

    @settings(max_examples=60, deadline=None)
    @given(confs=confidences)
    def test_positive_whenever_output_nonempty(self, confs):
        assert reward_for_output(confs) > 0.0

    @settings(max_examples=60, deadline=None)
    @given(confs=confidences)
    def test_monotone_in_theta(self, confs):
        """Higher priority -> higher reward (the §VI-E mechanism)."""
        r1 = reward_for_output(confs, theta=1.0)
        r5 = reward_for_output(confs, theta=5.0)
        r10 = reward_for_output(confs, theta=10.0)
        assert r1 < r5 < r10

    def test_log_compresses_many_labels(self):
        """§IV-A: 70 landmark labels must not drown a 1-label classifier."""
        landmarks = np.full(70, 0.8)
        single = np.asarray([0.9])
        ratio_raw = landmarks.sum() / single.sum()
        ratio_log = reward_for_output(landmarks) / reward_for_output(single)
        assert ratio_raw > 60
        assert ratio_log < 8

    def test_smoothing_variants(self):
        confs = np.asarray([0.6, 0.8])
        log_r = reward_for_output(confs, smoothing="log")
        mean_r = reward_for_output(confs, smoothing="mean")
        raw_r = reward_for_output(confs, smoothing="identity")
        assert log_r == pytest.approx(np.log(2.4))
        assert mean_r == pytest.approx(0.7)
        assert raw_r == pytest.approx(1.4)

    def test_unknown_smoothing_rejected(self):
        with pytest.raises(ValueError):
            reward_for_output(np.asarray([0.6]), smoothing="sqrt")


class TestRewardConfig:
    def test_default_theta_is_one(self):
        config = RewardConfig()
        assert config.theta_of("any_model") == 1.0

    def test_explicit_theta(self):
        config = RewardConfig(theta={"face_det": 10.0})
        assert config.theta_of("face_det") == 10.0
        assert config.theta_of("other") == 1.0

    def test_nonpositive_theta_rejected(self):
        with pytest.raises(ValueError):
            RewardConfig(theta={"m": 0.0})
        with pytest.raises(ValueError):
            RewardConfig(theta={"m": -2.0})

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ValueError):
            RewardConfig(smoothing="cubic")
