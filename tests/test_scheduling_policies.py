"""Ordering policies: random, optimal, Q-greedy, rules, traces."""

import numpy as np
import pytest

from repro.scheduling.base import run_ordering_policy
from repro.scheduling.optimal import GreedyMarginalPolicy, OptimalPolicy
from repro.scheduling.qgreedy import (
    AgentPredictor,
    OraclePredictor,
    QGreedyPolicy,
)
from repro.scheduling.random_policy import RandomPolicy
from repro.scheduling.rules import HANDCRAFTED_RULES, Rule, RuleBasedPolicy
from repro.analysis.metrics import average_cost_curves


class TestTraceInvariants:
    @pytest.fixture(
        params=["random", "optimal", "oracle_greedy", "rules"], scope="class"
    )
    def policy(self, request, truth):
        return {
            "random": RandomPolicy(seed=1),
            "optimal": OptimalPolicy(),
            "oracle_greedy": GreedyMarginalPolicy(cost="time"),
            "rules": RuleBasedPolicy(seed=1),
        }[request.param]

    def test_full_trace_reaches_total_value(self, policy, truth, test_item_ids):
        for item_id in test_item_ids[:15]:
            trace = run_ordering_policy(policy, truth, item_id)
            assert trace.n_executed == len(truth.zoo)
            assert trace.value_obtained == pytest.approx(trace.total_value)
            assert trace.recall == pytest.approx(1.0)

    def test_no_duplicate_executions(self, policy, truth, test_item_ids):
        for item_id in test_item_ids[:15]:
            trace = run_ordering_policy(policy, truth, item_id)
            indices = [e.model_index for e in trace.executions]
            assert len(set(indices)) == len(indices)

    def test_serial_timing(self, policy, truth, test_item_ids, zoo):
        trace = run_ordering_policy(policy, truth, test_item_ids[0])
        clock = 0.0
        for e in trace.executions:
            assert e.start_time == pytest.approx(clock)
            assert e.duration == pytest.approx(zoo[e.model_index].time)
            clock = e.finish_time
        assert trace.makespan == pytest.approx(zoo.total_time)
        assert trace.serial_time == pytest.approx(zoo.total_time)

    def test_max_models_cap(self, policy, truth, test_item_ids):
        trace = run_ordering_policy(policy, truth, test_item_ids[0], max_models=3)
        assert trace.n_executed == 3


class TestCostToRecall:
    def test_zero_threshold_costs_one_model(self, truth, test_item_ids):
        trace = run_ordering_policy(RandomPolicy(seed=2), truth, test_item_ids[0])
        n, t = trace.cost_to_recall(0.0)
        assert n == 1.0
        assert t == pytest.approx(trace.executions[0].finish_time)

    def test_monotone_in_threshold(self, truth, test_item_ids):
        trace = run_ordering_policy(RandomPolicy(seed=2), truth, test_item_ids[0])
        thresholds = np.linspace(0, 1, 11)
        costs = [trace.cost_to_recall(t) for t in thresholds]
        for (n1, t1), (n2, t2) in zip(costs, costs[1:]):
            assert n2 >= n1 and t2 >= t1 - 1e-12

    def test_recall_by_deadline(self, truth, test_item_ids):
        trace = run_ordering_policy(OptimalPolicy(), truth, test_item_ids[0])
        assert trace.recall_by(0.0) == pytest.approx(0.0) or trace.total_value == 0
        assert trace.recall_by(trace.makespan) == pytest.approx(trace.recall)

    def test_mismatched_lengths_rejected(self):
        from repro.core.evaluation import recall_curve

        with pytest.raises(ValueError):
            recall_curve([1.0], [0.1, 0.2], 1.0, [0.5])

    def test_exact_boundary_hit(self):
        """Regression: a recall threshold met *exactly* at a finish time.

        Both tolerances share :data:`repro.scheduling.base.TOLERANCE`, so
        the execution whose cumulative value equals the target exactly is
        counted, and the finish time ``cost_to_recall`` returns attains the
        threshold when fed back through ``recall_by``.
        """
        from repro.scheduling.base import (
            TOLERANCE,
            ScheduledExecution,
            ScheduleTrace,
        )

        trace = ScheduleTrace(item_id="x", total_value=1.0)
        for idx, (finish, value) in enumerate(
            [(0.25, 0.5), (0.75, 0.25), (1.0, 0.25)]
        ):
            trace.executions.append(
                ScheduledExecution(
                    model_index=idx,
                    model_name=f"m{idx}",
                    start_time=trace.makespan,
                    finish_time=finish,
                    marginal_value=value,
                    new_labels=1,
                )
            )
        assert TOLERANCE == 1e-9
        # 0.5 + 0.25 hits threshold 0.75 exactly at the second execution
        n, t = trace.cost_to_recall(0.75)
        assert (n, t) == (2.0, 0.75)
        # a deadline equal to that finish time must count the execution...
        assert trace.value_by(0.75) == pytest.approx(0.75)
        # ...so the (models, time) cost is consistent with recall_by
        assert trace.recall_by(t) >= 0.75


class TestOptimalPolicy:
    def test_orders_by_solo_value(self, truth, test_item_ids):
        policy = OptimalPolicy()
        for item_id in test_item_ids[:10]:
            trace = run_ordering_policy(policy, truth, item_id)
            solo = truth.solo_values(item_id)
            values = [solo[e.model_index] for e in trace.executions]
            assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_beats_random_on_average(self, truth, test_item_ids):
        optimal_traces = [
            run_ordering_policy(OptimalPolicy(), truth, i) for i in test_item_ids
        ]
        random_traces = [
            run_ordering_policy(RandomPolicy(seed=9), truth, i)
            for i in test_item_ids
        ]
        opt = average_cost_curves("optimal", optimal_traces)
        rnd = average_cost_curves("random", random_traces)
        for threshold in (0.5, 0.8, 1.0):
            assert opt.at(threshold)[0] <= rnd.at(threshold)[0]
        assert opt.at(0.8)[0] < rnd.at(0.8)[0]


class TestOraclePredictorAndQGreedy:
    def test_oracle_qgreedy_near_optimal(self, truth, test_item_ids):
        """Q-greedy with a perfect predictor tracks the greedy oracle."""
        policy = QGreedyPolicy(OraclePredictor(truth))
        greedy = GreedyMarginalPolicy(cost="unit")
        for item_id in test_item_ids[:10]:
            trace_q = run_ordering_policy(policy, truth, item_id)
            trace_g = run_ordering_policy(greedy, truth, item_id)
            n_q, _ = trace_q.cost_to_recall(1.0)
            n_g, _ = trace_g.cost_to_recall(1.0)
            assert n_q == pytest.approx(n_g, abs=1.0)

    def test_agent_predictor_shape(self, trained, truth, zoo):
        from repro.core.state import LabelingState

        predictor = AgentPredictor(trained.agent, len(zoo))
        state = LabelingState(truth, truth.item_ids[0])
        q = predictor.predict(state)
        assert q.shape == (len(zoo),)

    def test_agent_predictor_rejects_small_agent(self, trained):
        with pytest.raises(ValueError):
            AgentPredictor(trained.agent, trained.agent.n_actions + 5)


class TestRules:
    def test_table2_has_ten_rules(self):
        assert len(HANDCRAFTED_RULES) == 10

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            Rule("a", "bad", lambda l, v: True, "b", 0.0)

    def test_promotion_rule_fires(self, truth, zoo, test_item_ids):
        """After a person is detected, pose models gain weight."""
        policy = RuleBasedPolicy(seed=0)
        person_items = [
            i
            for i in test_item_ids
            if truth.record(i).item.content.has_person
        ]
        if not person_items:
            pytest.skip("no person items in sample")
        item_id = person_items[0]
        policy.reset(truth, item_id)
        from repro.core.state import LabelingState

        state = LabelingState(truth, item_id)
        object_index = zoo.index_of("mini_object")
        # only meaningful when the detector actually outputs "person"
        output = truth.output(item_id, object_index)
        names = [l.name for l in output.valuable(truth.threshold)]
        if "person" not in names:
            pytest.skip("detector missed the person on this item")
        state.execute(object_index)
        policy.observe(state, object_index)
        pose_index = zoo.index_of("mini_pose")
        assert policy._weights[pose_index] == pytest.approx(2.0)

    def test_rules_fire_at_most_once(self, truth, zoo, test_item_ids):
        policy = RuleBasedPolicy(seed=0)
        from repro.core.state import LabelingState

        for item_id in test_item_ids[:10]:
            policy.reset(truth, item_id)
            state = LabelingState(truth, item_id)
            for j in range(len(zoo)):
                state_weights_before = policy._weights.copy()
                state.execute(j)
                policy.observe(state, j)
            assert (policy._weights <= 4.0 + 1e-9).all()  # 2 promos max per task


class TestRandomPolicy:
    def test_different_seeds_different_orders(self, truth, test_item_ids):
        t1 = run_ordering_policy(RandomPolicy(seed=1), truth, test_item_ids[0])
        t2 = run_ordering_policy(RandomPolicy(seed=2), truth, test_item_ids[0])
        o1 = [e.model_index for e in t1.executions]
        o2 = [e.model_index for e in t2.executions]
        assert o1 != o2
