"""The serving tier: micro-batch flushes, admission, lifecycle, telemetry."""

import threading
import time

import pytest

from repro.engine import LabelingEngine
from repro.rl.agents import make_agent
from repro.zoo.oracle import GroundTruth
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import (
    DeadlineExpired,
    LabelingRequest,
    LabelingService,
    LabelingSpec,
    LatencyHistogram,
    QueueFull,
    RequestQueue,
    ServiceStopped,
    ServiceTelemetry,
)


@pytest.fixture(scope="module")
def predictor(zoo, space):
    # Serving semantics do not depend on agent quality; an untrained
    # network keeps this module independent of the slow trained fixture.
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return AgentPredictor(agent, len(zoo))


@pytest.fixture(scope="module")
def engine(zoo, predictor, world_config):
    return LabelingEngine(zoo, predictor, world_config)


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:24]


@pytest.fixture(scope="module")
def min_cost(zoo):
    return float(zoo.times.min())


def service_for(engine, truth, **kwargs):
    kwargs.setdefault("deadline", 0.35)
    return LabelingService(engine, truth=truth, **kwargs)


def request_for(item, **kwargs):
    return LabelingRequest(item=item, **kwargs)


class TestMicroBatchFlush:
    def test_size_triggered_flush(self, engine, truth, items):
        # Requests queued before start() + a long flush timer: every flush
        # must be size-triggered, in exactly ceil(8/4) batches.
        service = service_for(engine, truth, batch_size=4, max_wait=5.0)
        futures = service.submit_many(items[:8])
        with service:
            results = [f.result(timeout=10) for f in futures]
        assert [r.item_id for r in results] == [i.item_id for i in items[:8]]
        snapshot = service.snapshot()
        assert snapshot.counters["submitted"] == 8
        assert snapshot.counters["completed"] == 8
        assert snapshot.flushes == {
            "size": 2, "wait": 0, "drain": 0, "regime_split": 0,
        }
        assert snapshot.batched_items == 8
        assert snapshot.mean_batch_size == 4.0

    def test_wait_triggered_flush(self, engine, truth, items):
        # An underfull batch must flush once max_wait elapses, not hang
        # until batch_size arrives.
        service = service_for(engine, truth, batch_size=64, max_wait=0.03)
        with service:
            futures = service.submit_many(items[:3])
            results = [f.result(timeout=10) for f in futures]
        assert len(results) == 3
        snapshot = service.snapshot()
        assert snapshot.counters["completed"] == 3
        assert snapshot.flushes["size"] == 0
        assert snapshot.flushes["wait"] + snapshot.flushes["drain"] >= 1

    def test_results_match_direct_engine_dispatch(self, engine, truth, items):
        # The serving layer adds queueing, not semantics: futures must
        # resolve to traces identical to a direct engine call.
        service = service_for(engine, truth, batch_size=8, max_wait=0.01)
        with service:
            futures = service.submit_many(items)
            served = [f.result(timeout=10) for f in futures]
        direct = engine.label_batch(items, deadline=0.35, truth=truth)
        for got, ref in zip(served, direct):
            assert got.item_id == ref.item_id
            assert got.trace.executions == ref.trace.executions
            assert got.label_names == ref.label_names

    def test_service_validation(self, engine, truth):
        with pytest.raises(ValueError, match="batch_size"):
            LabelingService(engine, batch_size=0)
        with pytest.raises(ValueError, match="max_wait"):
            LabelingService(engine, max_wait=-0.1)
        with pytest.raises(ValueError, match="workers"):
            LabelingService(engine, workers=0)
        with pytest.raises(ValueError, match="requires a deadline"):
            LabelingService(engine, memory_budget=1000.0)


class TestSharedTruthLifecycle:
    def test_unrecorded_items_run_in_bounded_memory(
        self, engine, zoo, world_config, items
    ):
        # Empty shared cache + duplicate submissions across batches on
        # several workers: the refcounted record/release path must neither
        # double-record nor evict a record a concurrent batch still needs,
        # and must leave the cache empty afterwards.
        shared = GroundTruth(zoo, [], world_config)
        service = LabelingService(
            engine, truth=shared, batch_size=3, max_wait=0.005,
            workers=3, deadline=0.35,
        )
        with service:
            futures = service.submit_many(items[:12]) + service.submit_many(
                items[:12]
            )
            results = [f.result(timeout=10) for f in futures]
        assert [r.item_id for r in results] == [
            i.item_id for i in items[:12]
        ] * 2
        assert service.snapshot().counters["failed"] == 0
        assert len(shared) == 0

    def test_caller_recorded_items_are_never_evicted(
        self, engine, zoo, world_config, items
    ):
        shared = GroundTruth(zoo, items[:2], world_config)
        service = service_for(engine, shared, batch_size=4, workers=2)
        with service:
            futures = service.submit_many(items[:6])
            [f.result(timeout=10) for f in futures]
        assert set(shared.item_ids) == {item.item_id for item in items[:2]}


class TestPriorityAdmission:
    def test_same_bucket_pops_fifo_regardless_of_priority(self, items):
        # Priorities weight a bucket's service *rate*; they no longer
        # reorder requests inside one bucket (spec-less requests all share
        # the None-key bucket), so pops are strictly FIFO here.
        queue = RequestQueue(max_depth=16)
        for i, item in enumerate(items[:9]):
            queue.put(request_for(item, priority=i % 3))
        popped = []
        for _ in range(3):
            batch, expired, reason = queue.pop_batch(3, 0.0)
            assert expired == [] and reason in ("size", "wait")
            popped.append([r.item.item_id for r in batch])
        assert popped == [
            [items[i].item_id for i in (0, 1, 2)],
            [items[i].item_id for i in (3, 4, 5)],
            [items[i].item_id for i in (6, 7, 8)],
        ]

    def test_service_interleaves_priority_buckets_by_weight(
        self, engine, truth, items
    ):
        # Two regimes, high priority submitted first: weighted fairness
        # serves the low-priority bucket on the second dispatch instead of
        # draining the high-priority backlog first (the legacy grouper
        # would dispatch high, high, low, low).  One worker serializes
        # batches so the dispatch log shows the queue's ordering.
        service = service_for(
            engine, truth, batch_size=4, max_wait=5.0, workers=1, deadline=None
        )
        dispatched = []
        inner = service._label_batch
        service._label_batch = lambda batch, spec: (
            dispatched.append([i.item_id for i in batch]),
            inner(batch, spec),
        )[1]
        high = LabelingSpec(priority=2)
        low = LabelingSpec(deadline=0.35, priority=0)
        futures = [service.submit(item, high) for item in items[:8]]
        futures += [service.submit(item, low) for item in items[8:16]]
        with service:
            for future in futures:
                future.result(timeout=10)
        # stride order: high pays 4/2**2=1 per batch, low pays 4/2**0=4
        assert dispatched == [
            [i.item_id for i in items[0:4]],  # high (FIFO tie-break)
            [i.item_id for i in items[8:12]],  # low's turn: pass 0 < 1
            [i.item_id for i in items[4:8]],  # high again: pass 1 < 4
            [i.item_id for i in items[12:16]],  # low drains last
        ]


class TestBackpressure:
    def test_reject_policy_raises_and_counts(self, engine, truth, items):
        service = service_for(
            engine, truth, batch_size=2, max_depth=2, overflow="reject"
        )
        service.submit(items[0])
        service.submit(items[1])
        with pytest.raises(QueueFull):
            service.submit(items[2])
        snapshot = service.snapshot()
        assert snapshot.counters["rejected"] == 1
        assert snapshot.counters["submitted"] == 2
        assert snapshot.queue_depth == 2
        with service:
            pass  # drain + shutdown: the two admitted items still complete
        assert service.snapshot().counters["completed"] == 2

    def test_block_policy_times_out(self, items):
        queue = RequestQueue(max_depth=1, overflow="block")
        queue.put(request_for(items[0]))
        start = time.monotonic()
        with pytest.raises(QueueFull, match="stayed at max depth"):
            queue.put(request_for(items[1]), timeout=0.05)
        assert time.monotonic() - start >= 0.04

    def test_block_policy_admits_when_space_frees(self, engine, truth, items):
        # A producer blocked on a full queue must unblock once the
        # dispatcher drains it, without errors.
        service = service_for(
            engine, truth, batch_size=2, max_wait=0.005, max_depth=2
        )
        with service:
            futures = [
                service.submit(item, timeout=5.0) for item in items[:10]
            ]
            results = [f.result(timeout=10) for f in futures]
        assert len(results) == 10
        assert service.snapshot().counters["completed"] == 10


class TestDeadlineAdmission:
    def test_impossible_deadline_rejected_at_submit(
        self, engine, truth, items, min_cost
    ):
        service = service_for(engine, truth)
        with pytest.raises(DeadlineExpired, match="cheapest"):
            service.submit(items[0], deadline=min_cost / 2)
        snapshot = service.snapshot()
        assert snapshot.counters["expired"] == 1
        assert snapshot.counters["submitted"] == 0
        assert snapshot.queue_depth == 0

    def test_deadline_expiring_in_queue_drops_request(
        self, engine, truth, items, min_cost
    ):
        # Admissible at submit, but the budget runs out while queued: the
        # future fails with DeadlineExpired instead of wasting a slot.
        service = service_for(engine, truth, batch_size=4)
        doomed = service.submit(items[0], deadline=min_cost + 0.02)
        alive = service.submit(items[1])
        time.sleep(0.15)
        with service:
            assert alive.result(timeout=10).item_id == items[1].item_id
            with pytest.raises(DeadlineExpired, match="expired after"):
                doomed.result(timeout=10)
        snapshot = service.snapshot()
        assert snapshot.counters["expired"] == 1
        assert snapshot.counters["completed"] == 1

    def test_unconstrained_requests_never_expire(self, items):
        queue = RequestQueue(min_cost=1.0)
        request = request_for(items[0])  # no deadline
        queue.put(request)
        batch, expired, _ = queue.pop_batch(4, 0.0)
        assert batch == [request] and expired == []


class TestLifecycle:
    def test_drain_resolves_everything(self, engine, truth, items):
        service = service_for(engine, truth, batch_size=4, max_wait=5.0)
        futures = service.submit_many(items[:10])
        service.start()
        assert service.drain(timeout=10)
        # drain flushed the underfull tail immediately (no 5 s wait) and
        # left nothing pending
        assert all(f.done() for f in futures)
        assert service.queue.depth == 0
        with pytest.raises(ServiceStopped):
            service.submit(items[0])
        service.shutdown()

    def test_shutdown_fails_undispatched_requests(self, engine, truth, items):
        service = service_for(engine, truth)
        futures = service.submit_many(items[:5])
        service.shutdown()  # never started: nothing was dispatched
        for future in futures:
            assert future.done()
            with pytest.raises(ServiceStopped):
                future.result()
        snapshot = service.snapshot()
        assert snapshot.counters["cancelled"] == 5
        assert snapshot.queue_depth == 0

    def test_context_manager_drains_on_exit(self, engine, truth, items):
        with service_for(engine, truth, batch_size=4) as service:
            futures = service.submit_many(items[:6])
        assert all(f.done() for f in futures)
        assert service.snapshot().counters["completed"] == 6

    def test_start_after_shutdown_refused(self, engine, truth):
        service = service_for(engine, truth)
        service.shutdown()
        with pytest.raises(ServiceStopped):
            service.start()

    def test_worker_failure_propagates_to_futures(self, engine, truth, items):
        service = service_for(engine, truth, batch_size=4, max_wait=5.0)
        boom = RuntimeError("backend exploded")

        def failing(batch, spec):
            raise boom

        service._label_batch = failing
        futures = service.submit_many(items[:4])
        with service:
            for future in futures:
                with pytest.raises(RuntimeError, match="backend exploded"):
                    future.result(timeout=10)
        assert service.snapshot().counters["failed"] == 4


class TestTelemetry:
    def test_snapshot_numbers_are_consistent(self, engine, truth, items):
        service = service_for(engine, truth, batch_size=4, max_wait=0.01)
        with service:
            futures = service.submit_many(items[:12])
            [f.result(timeout=10) for f in futures]
        snapshot = service.snapshot()
        assert snapshot.counters["submitted"] == 12
        assert snapshot.counters["completed"] == 12
        assert snapshot.batches == sum(snapshot.flushes.values())
        assert snapshot.batched_items == 12
        assert snapshot.throughput > 0
        assert snapshot.elapsed > 0
        wait = snapshot.queue_wait
        assert wait.count == 12
        assert 0 <= wait.p50 <= wait.p95 <= wait.p99 <= wait.max
        service_time = snapshot.service_time
        assert service_time.count == 12
        assert service_time.p99 > 0
        assert "items/sec" in snapshot.format()

    def test_worker_threads_appear_in_dispatch_counters(self, engine, truth, items):
        # With a thread-dispatched engine the per-worker counters name the
        # service's worker threads and account for every dispatched item.
        service = service_for(engine, truth, batch_size=4, max_wait=0.01)
        with service:
            [f.result(timeout=10) for f in service.submit_many(items[:12])]
        snapshot = service.snapshot()
        assert snapshot.workers
        assert all(w.startswith("labeling-worker") for w in snapshot.workers)
        assert sum(snapshot.workers.values()) == 12
        assert "workers" in snapshot.format()

    def test_extra_workers_merge_into_snapshot(self):
        telemetry = ServiceTelemetry()
        telemetry.observe_dispatch("pid1", 3)
        snapshot = telemetry.snapshot(extra_workers={"pid1": 2, "pid2": 5})
        assert snapshot.workers == {"pid1": 5, "pid2": 5}

    def test_reset_zeroes_counters(self):
        telemetry = ServiceTelemetry()
        telemetry.count("completed", 3)
        telemetry.observe_flush(3, "size")
        telemetry.reset()
        snapshot = telemetry.snapshot()
        assert snapshot.counters["completed"] == 0
        assert snapshot.batches == 0
        assert snapshot.queue_wait.count == 0

    def test_histogram_reservoir_bounds_memory(self):
        histogram = LatencyHistogram(capacity=100, seed=3)
        for i in range(10_000):
            histogram.observe(i / 10_000)
        stats = histogram.stats()
        assert histogram.count == 10_000
        assert len(histogram._samples) == 100
        # reservoir percentiles track the uniform population
        assert 0.3 < stats.p50 < 0.7
        assert stats.p99 > 0.8

    def test_empty_stats(self):
        stats = LatencyHistogram().stats()
        assert stats.count == 0
        assert stats.format() == "no samples"


def recording_service(engine, truth, **kwargs):
    """A service whose every engine dispatch is logged as (item_ids, spec)."""
    service = service_for(engine, truth, **kwargs)
    dispatched = []
    inner = service._label_batch
    service._label_batch = lambda batch, spec: (
        dispatched.append(([i.item_id for i in batch], spec)),
        inner(batch, spec),
    )[1]
    return service, dispatched


class TestMixedRegimes:
    """One service hosting several specs dispatches only homogeneous batches."""

    def test_mixed_traffic_yields_only_homogeneous_batches(
        self, engine, truth, items
    ):
        specs = [
            LabelingSpec(),
            LabelingSpec(deadline=0.35),
            LabelingSpec(deadline=0.5, memory_budget=8000.0),
        ]
        service, dispatched = recording_service(
            engine, truth, batch_size=4, max_wait=0.005, deadline=None
        )
        by_item = {}
        with service:
            futures = []
            for i, item in enumerate(items):
                spec = specs[i % len(specs)]
                by_item[item.item_id] = spec
                futures.append(service.submit(item, spec))
            results = [f.result(timeout=10) for f in futures]
        assert len(results) == len(items)
        assert service.snapshot().counters["failed"] == 0
        # every dispatched batch holds exactly one batch_key, and the spec
        # handed to the engine is that key's spec
        assert dispatched
        for item_ids, spec in dispatched:
            keys = {by_item[i].batch_key for i in item_ids}
            assert keys == {spec.batch_key}
        # all three regimes actually flowed through the service
        seen = {spec.regime for _, spec in dispatched}
        assert seen == {"qgreedy", "deadline", "deadline_memory"}

    def test_per_regime_telemetry_counters(self, engine, truth, items):
        service = service_for(
            engine, truth, batch_size=4, max_wait=0.005, deadline=None
        )
        with service:
            futures = [
                service.submit(item, LabelingSpec(deadline=0.35))
                for item in items[:6]
            ] + [service.submit(item) for item in items[6:12]]
            [f.result(timeout=10) for f in futures]
        regimes = service.snapshot().regimes
        assert regimes["deadline"] == 6
        assert regimes["qgreedy"] == 6
        assert "regimes" in service.snapshot().format()

    def test_pre_start_mixed_queue_splits_deterministically(
        self, engine, truth, items
    ):
        # 4 unconstrained + 4 deadline requests queued before start(), with
        # a huge batch_size: the first pop takes all of one key and, since
        # other-key traffic was waiting when its timer expired, flushes as
        # regime_split; the second pop gets the rest.
        service, dispatched = recording_service(
            engine, truth, batch_size=64, max_wait=0.05, workers=1, deadline=None
        )
        futures = []
        for i, item in enumerate(items[:8]):
            spec = LabelingSpec(deadline=0.35) if i % 2 else LabelingSpec()
            futures.append(service.submit(item, spec))
        with service:
            [f.result(timeout=10) for f in futures]
        assert [len(ids) for ids, _ in dispatched] == [4, 4]
        assert service.snapshot().flushes["regime_split"] >= 1
        # FIFO anchor: the first batch is the first-submitted key's
        assert dispatched[0][1].regime == "qgreedy"
        assert dispatched[1][1].regime == "deadline"

    def test_results_match_direct_engine_dispatch_per_spec(
        self, engine, truth, items
    ):
        # mixed-regime serving adds grouping, not semantics: every future
        # resolves to the trace a direct engine call under its spec yields
        specs = [LabelingSpec(), LabelingSpec(deadline=0.35)]
        pairs = [(item, specs[i % 2]) for i, item in enumerate(items)]
        service = service_for(
            engine, truth, batch_size=8, max_wait=0.005, deadline=None
        )
        with service:
            futures = [(item, spec, service.submit(item, spec)) for item, spec in pairs]
            served = [(item, spec, f.result(timeout=10)) for item, spec, f in futures]
        for spec in specs:
            group = [(item, got) for item, s, got in served if s is spec]
            direct = engine.label_batch([item for item, _ in group], spec, truth=truth)
            for (_, got), ref in zip(group, direct):
                assert got.item_id == ref.item_id
                assert got.trace.executions == ref.trace.executions

    def test_spec_plus_priority_kwarg_rejected(self, engine, truth, items):
        service = service_for(engine, truth)
        with pytest.raises(ValueError, match="not both"):
            service.submit(items[0], LabelingSpec(priority=1), priority=2)
        with pytest.raises(ValueError, match="not both"):
            LabelingService(
                engine, spec=LabelingSpec(deadline=0.5), deadline=0.5
            )

    def test_service_spec_constructor_equivalence(self, engine, truth, items):
        via_kwargs = service_for(engine, truth)  # deadline=0.35 kwarg
        via_spec = LabelingService(
            engine, truth=truth, spec=LabelingSpec(deadline=0.35)
        )
        assert via_kwargs.default_spec == via_spec.default_spec
        with via_kwargs, via_spec:
            a = via_kwargs.submit(items[0]).result(timeout=10)
            b = via_spec.submit(items[0]).result(timeout=10)
        assert a.trace.executions == b.trace.executions

    def test_priority_kwarg_layers_on_default_spec(self, engine, truth, items):
        service = service_for(engine, truth)
        spec = service._request_spec(None, 3)
        assert spec.priority == 3
        assert spec.deadline == service.default_spec.deadline
        # and without a priority the default spec is used as-is
        assert service._request_spec(None, None) is service.default_spec


class TestBulkAdmission:
    def test_submit_many_counts_one_bulk_event(self, engine, truth, items):
        service = service_for(engine, truth, batch_size=4, max_wait=0.01)
        with service:
            futures = service.submit_many(items[:10])
            [f.result(timeout=10) for f in futures]
        counters = service.snapshot().counters
        assert counters["submitted"] == 10
        assert counters["submitted_many"] == 1
        assert counters["completed"] == 10

    def test_submit_many_with_spec(self, engine, truth, items):
        service = service_for(
            engine, truth, batch_size=4, max_wait=0.01, deadline=None
        )
        with service:
            futures = service.submit_many(
                items[:6], LabelingSpec(deadline=0.35, priority=1)
            )
            results = [f.result(timeout=10) for f in futures]
        assert [r.item_id for r in results] == [i.item_id for i in items[:6]]
        assert service.snapshot().regimes == {"deadline": 6}

    def test_submit_many_expired_items_fail_their_futures(
        self, engine, truth, items, min_cost
    ):
        # bulk admission never raises mid-stream: the impossible-deadline
        # items get DeadlineExpired on their futures, the rest complete
        service = service_for(engine, truth, batch_size=4, max_wait=0.01)
        with service:
            futures = service.submit_many(items[:4], deadline=min_cost / 2)
            good = service.submit_many(items[4:8])
            for future in futures:
                with pytest.raises(DeadlineExpired):
                    future.result(timeout=10)
            [f.result(timeout=10) for f in good]
        counters = service.snapshot().counters
        assert counters["expired"] == 4
        assert counters["submitted"] == 4
        assert counters["submitted_many"] == 2
        assert counters["completed"] == 4

    def test_submit_many_reject_overflow_fails_futures(
        self, engine, truth, items
    ):
        service = service_for(
            engine, truth, batch_size=2, max_depth=2, overflow="reject"
        )
        futures = service.submit_many(items[:5])
        for future in futures[2:]:
            with pytest.raises(QueueFull):
                future.result(timeout=10)
        counters = service.snapshot().counters
        assert counters["rejected"] == 3
        assert counters["submitted"] == 2
        with service:
            pass
        assert service.snapshot().counters["completed"] == 2

    def test_put_many_overflow_wakes_running_consumer(self, items):
        # Regression: bulk admission beyond max_depth under block overflow
        # must wake the (idle) consumer for the requests it already pushed
        # before blocking for space — not deadlock on the shared condition.
        queue = RequestQueue(max_depth=2, overflow="block")
        popped = []

        def consumer():
            while True:
                batch, _, reason = queue.pop_batch(2, 0.005)
                if reason is None:
                    return
                popped.extend(batch)

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)  # park the consumer in the empty-heap wait
        outcome = queue.put_many(
            [request_for(item) for item in items[:6]], timeout=5.0
        )
        assert len(outcome.admitted) == 6
        assert not outcome.rejected and not outcome.stopped
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_submit_many_empty_input(self, engine, truth):
        service = service_for(engine, truth)
        assert service.submit_many([]) == []
        assert service.snapshot().counters["submitted_many"] == 0
        service.shutdown()

    def test_submit_many_refused_after_drain(self, engine, truth, items):
        service = service_for(engine, truth)
        service.start()
        service.drain(timeout=10)
        with pytest.raises(ServiceStopped):
            service.submit_many(items[:3])
        service.shutdown()


class TestQueueValidation:
    def test_constructor_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_depth"):
            RequestQueue(max_depth=0)
        with pytest.raises(ValueError, match="overflow"):
            RequestQueue(overflow="drop-newest")
        with pytest.raises(ValueError, match="min_cost"):
            RequestQueue(min_cost=-1.0)

    def test_pop_batch_rejects_bad_parameters(self):
        queue = RequestQueue()
        with pytest.raises(ValueError, match="max_items"):
            queue.pop_batch(0, 0.1)
        with pytest.raises(ValueError, match="max_wait"):
            queue.pop_batch(1, -0.1)

    def test_closed_queue_refuses_put_and_signals_pop(self, items):
        queue = RequestQueue()
        queue.put(request_for(items[0]))
        leftovers = queue.close()
        assert [r.item.item_id for r in leftovers] == [items[0].item_id]
        with pytest.raises(ServiceStopped):
            queue.put(request_for(items[1]))
        assert queue.pop_batch(4, 0.0) == ([], [], None)
