"""The serving tier: micro-batch flushes, admission, lifecycle, telemetry."""

import time

import pytest

from repro.engine import LabelingEngine
from repro.rl.agents import make_agent
from repro.zoo.oracle import GroundTruth
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import (
    DeadlineExpired,
    LabelingRequest,
    LabelingService,
    LatencyHistogram,
    QueueFull,
    RequestQueue,
    ServiceStopped,
    ServiceTelemetry,
)


@pytest.fixture(scope="module")
def predictor(zoo, space):
    # Serving semantics do not depend on agent quality; an untrained
    # network keeps this module independent of the slow trained fixture.
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return AgentPredictor(agent, len(zoo))


@pytest.fixture(scope="module")
def engine(zoo, predictor, world_config):
    return LabelingEngine(zoo, predictor, world_config)


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:24]


@pytest.fixture(scope="module")
def min_cost(zoo):
    return float(zoo.times.min())


def service_for(engine, truth, **kwargs):
    kwargs.setdefault("deadline", 0.35)
    return LabelingService(engine, truth=truth, **kwargs)


def request_for(item, **kwargs):
    return LabelingRequest(item=item, **kwargs)


class TestMicroBatchFlush:
    def test_size_triggered_flush(self, engine, truth, items):
        # Requests queued before start() + a long flush timer: every flush
        # must be size-triggered, in exactly ceil(8/4) batches.
        service = service_for(engine, truth, batch_size=4, max_wait=5.0)
        futures = service.submit_many(items[:8])
        with service:
            results = [f.result(timeout=10) for f in futures]
        assert [r.item_id for r in results] == [i.item_id for i in items[:8]]
        snapshot = service.snapshot()
        assert snapshot.counters["submitted"] == 8
        assert snapshot.counters["completed"] == 8
        assert snapshot.flushes == {"size": 2, "wait": 0, "drain": 0}
        assert snapshot.batched_items == 8
        assert snapshot.mean_batch_size == 4.0

    def test_wait_triggered_flush(self, engine, truth, items):
        # An underfull batch must flush once max_wait elapses, not hang
        # until batch_size arrives.
        service = service_for(engine, truth, batch_size=64, max_wait=0.03)
        with service:
            futures = service.submit_many(items[:3])
            results = [f.result(timeout=10) for f in futures]
        assert len(results) == 3
        snapshot = service.snapshot()
        assert snapshot.counters["completed"] == 3
        assert snapshot.flushes["size"] == 0
        assert snapshot.flushes["wait"] + snapshot.flushes["drain"] >= 1

    def test_results_match_direct_engine_dispatch(self, engine, truth, items):
        # The serving layer adds queueing, not semantics: futures must
        # resolve to traces identical to a direct engine call.
        service = service_for(engine, truth, batch_size=8, max_wait=0.01)
        with service:
            futures = service.submit_many(items)
            served = [f.result(timeout=10) for f in futures]
        direct = engine.label_batch(items, deadline=0.35, truth=truth)
        for got, ref in zip(served, direct):
            assert got.item_id == ref.item_id
            assert got.trace.executions == ref.trace.executions
            assert got.label_names == ref.label_names

    def test_service_validation(self, engine, truth):
        with pytest.raises(ValueError, match="batch_size"):
            LabelingService(engine, batch_size=0)
        with pytest.raises(ValueError, match="max_wait"):
            LabelingService(engine, max_wait=-0.1)
        with pytest.raises(ValueError, match="workers"):
            LabelingService(engine, workers=0)
        with pytest.raises(ValueError, match="requires a deadline"):
            LabelingService(engine, memory_budget=1000.0)


class TestSharedTruthLifecycle:
    def test_unrecorded_items_run_in_bounded_memory(
        self, engine, zoo, world_config, items
    ):
        # Empty shared cache + duplicate submissions across batches on
        # several workers: the refcounted record/release path must neither
        # double-record nor evict a record a concurrent batch still needs,
        # and must leave the cache empty afterwards.
        shared = GroundTruth(zoo, [], world_config)
        service = LabelingService(
            engine, truth=shared, batch_size=3, max_wait=0.005,
            workers=3, deadline=0.35,
        )
        with service:
            futures = service.submit_many(items[:12]) + service.submit_many(
                items[:12]
            )
            results = [f.result(timeout=10) for f in futures]
        assert [r.item_id for r in results] == [
            i.item_id for i in items[:12]
        ] * 2
        assert service.snapshot().counters["failed"] == 0
        assert len(shared) == 0

    def test_caller_recorded_items_are_never_evicted(
        self, engine, zoo, world_config, items
    ):
        shared = GroundTruth(zoo, items[:2], world_config)
        service = service_for(engine, shared, batch_size=4, workers=2)
        with service:
            futures = service.submit_many(items[:6])
            [f.result(timeout=10) for f in futures]
        assert set(shared.item_ids) == {item.item_id for item in items[:2]}


class TestPriorityAdmission:
    def test_queue_pops_by_priority_then_fifo(self, items):
        queue = RequestQueue(max_depth=16)
        for i, item in enumerate(items[:9]):
            queue.put(request_for(item, priority=i % 3))
        popped = []
        for _ in range(3):
            batch, expired, reason = queue.pop_batch(3, 0.0)
            assert expired == [] and reason in ("size", "wait")
            popped.append([r.item.item_id for r in batch])
        # priority classes 2, 1, 0 — submission order within each class
        assert popped == [
            [items[i].item_id for i in (2, 5, 8)],
            [items[i].item_id for i in (1, 4, 7)],
            [items[i].item_id for i in (0, 3, 6)],
        ]

    def test_service_dispatches_priority_classes_in_order(
        self, engine, truth, items
    ):
        # One worker serializes batches, so the dispatch log shows the
        # queue's ordering under pre-start contention.
        service = service_for(engine, truth, batch_size=4, max_wait=5.0, workers=1)
        dispatched = []
        inner = service._label_batch
        service._label_batch = lambda batch: (
            dispatched.append([i.item_id for i in batch]),
            inner(batch),
        )[1]
        futures = [
            service.submit(item, priority=i % 2)
            for i, item in enumerate(items[:8])
        ]
        with service:
            for future in futures:
                future.result(timeout=10)
        assert dispatched == [
            [items[i].item_id for i in (1, 3, 5, 7)],  # priority 1 first
            [items[i].item_id for i in (0, 2, 4, 6)],  # then priority 0
        ]


class TestBackpressure:
    def test_reject_policy_raises_and_counts(self, engine, truth, items):
        service = service_for(
            engine, truth, batch_size=2, max_depth=2, overflow="reject"
        )
        service.submit(items[0])
        service.submit(items[1])
        with pytest.raises(QueueFull):
            service.submit(items[2])
        snapshot = service.snapshot()
        assert snapshot.counters["rejected"] == 1
        assert snapshot.counters["submitted"] == 2
        assert snapshot.queue_depth == 2
        with service:
            pass  # drain + shutdown: the two admitted items still complete
        assert service.snapshot().counters["completed"] == 2

    def test_block_policy_times_out(self, items):
        queue = RequestQueue(max_depth=1, overflow="block")
        queue.put(request_for(items[0]))
        start = time.monotonic()
        with pytest.raises(QueueFull, match="stayed at max depth"):
            queue.put(request_for(items[1]), timeout=0.05)
        assert time.monotonic() - start >= 0.04

    def test_block_policy_admits_when_space_frees(self, engine, truth, items):
        # A producer blocked on a full queue must unblock once the
        # dispatcher drains it, without errors.
        service = service_for(
            engine, truth, batch_size=2, max_wait=0.005, max_depth=2
        )
        with service:
            futures = [
                service.submit(item, timeout=5.0) for item in items[:10]
            ]
            results = [f.result(timeout=10) for f in futures]
        assert len(results) == 10
        assert service.snapshot().counters["completed"] == 10


class TestDeadlineAdmission:
    def test_impossible_deadline_rejected_at_submit(
        self, engine, truth, items, min_cost
    ):
        service = service_for(engine, truth)
        with pytest.raises(DeadlineExpired, match="cheapest"):
            service.submit(items[0], deadline=min_cost / 2)
        snapshot = service.snapshot()
        assert snapshot.counters["expired"] == 1
        assert snapshot.counters["submitted"] == 0
        assert snapshot.queue_depth == 0

    def test_deadline_expiring_in_queue_drops_request(
        self, engine, truth, items, min_cost
    ):
        # Admissible at submit, but the budget runs out while queued: the
        # future fails with DeadlineExpired instead of wasting a slot.
        service = service_for(engine, truth, batch_size=4)
        doomed = service.submit(items[0], deadline=min_cost + 0.02)
        alive = service.submit(items[1])
        time.sleep(0.15)
        with service:
            assert alive.result(timeout=10).item_id == items[1].item_id
            with pytest.raises(DeadlineExpired, match="expired after"):
                doomed.result(timeout=10)
        snapshot = service.snapshot()
        assert snapshot.counters["expired"] == 1
        assert snapshot.counters["completed"] == 1

    def test_unconstrained_requests_never_expire(self, items):
        queue = RequestQueue(min_cost=1.0)
        request = request_for(items[0])  # no deadline
        queue.put(request)
        batch, expired, _ = queue.pop_batch(4, 0.0)
        assert batch == [request] and expired == []


class TestLifecycle:
    def test_drain_resolves_everything(self, engine, truth, items):
        service = service_for(engine, truth, batch_size=4, max_wait=5.0)
        futures = service.submit_many(items[:10])
        service.start()
        assert service.drain(timeout=10)
        # drain flushed the underfull tail immediately (no 5 s wait) and
        # left nothing pending
        assert all(f.done() for f in futures)
        assert service.queue.depth == 0
        with pytest.raises(ServiceStopped):
            service.submit(items[0])
        service.shutdown()

    def test_shutdown_fails_undispatched_requests(self, engine, truth, items):
        service = service_for(engine, truth)
        futures = service.submit_many(items[:5])
        service.shutdown()  # never started: nothing was dispatched
        for future in futures:
            assert future.done()
            with pytest.raises(ServiceStopped):
                future.result()
        snapshot = service.snapshot()
        assert snapshot.counters["cancelled"] == 5
        assert snapshot.queue_depth == 0

    def test_context_manager_drains_on_exit(self, engine, truth, items):
        with service_for(engine, truth, batch_size=4) as service:
            futures = service.submit_many(items[:6])
        assert all(f.done() for f in futures)
        assert service.snapshot().counters["completed"] == 6

    def test_start_after_shutdown_refused(self, engine, truth):
        service = service_for(engine, truth)
        service.shutdown()
        with pytest.raises(ServiceStopped):
            service.start()

    def test_worker_failure_propagates_to_futures(self, engine, truth, items):
        service = service_for(engine, truth, batch_size=4, max_wait=5.0)
        boom = RuntimeError("backend exploded")

        def failing(batch):
            raise boom

        service._label_batch = failing
        futures = service.submit_many(items[:4])
        with service:
            for future in futures:
                with pytest.raises(RuntimeError, match="backend exploded"):
                    future.result(timeout=10)
        assert service.snapshot().counters["failed"] == 4


class TestTelemetry:
    def test_snapshot_numbers_are_consistent(self, engine, truth, items):
        service = service_for(engine, truth, batch_size=4, max_wait=0.01)
        with service:
            futures = service.submit_many(items[:12])
            [f.result(timeout=10) for f in futures]
        snapshot = service.snapshot()
        assert snapshot.counters["submitted"] == 12
        assert snapshot.counters["completed"] == 12
        assert snapshot.batches == sum(snapshot.flushes.values())
        assert snapshot.batched_items == 12
        assert snapshot.throughput > 0
        assert snapshot.elapsed > 0
        wait = snapshot.queue_wait
        assert wait.count == 12
        assert 0 <= wait.p50 <= wait.p95 <= wait.p99 <= wait.max
        service_time = snapshot.service_time
        assert service_time.count == 12
        assert service_time.p99 > 0
        assert "items/sec" in snapshot.format()

    def test_reset_zeroes_counters(self):
        telemetry = ServiceTelemetry()
        telemetry.count("completed", 3)
        telemetry.observe_flush(3, "size")
        telemetry.reset()
        snapshot = telemetry.snapshot()
        assert snapshot.counters["completed"] == 0
        assert snapshot.batches == 0
        assert snapshot.queue_wait.count == 0

    def test_histogram_reservoir_bounds_memory(self):
        histogram = LatencyHistogram(capacity=100, seed=3)
        for i in range(10_000):
            histogram.observe(i / 10_000)
        stats = histogram.stats()
        assert histogram.count == 10_000
        assert len(histogram._samples) == 100
        # reservoir percentiles track the uniform population
        assert 0.3 < stats.p50 < 0.7
        assert stats.p99 > 0.8

    def test_empty_stats(self):
        stats = LatencyHistogram().stats()
        assert stats.count == 0
        assert stats.format() == "no samples"


class TestQueueValidation:
    def test_constructor_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_depth"):
            RequestQueue(max_depth=0)
        with pytest.raises(ValueError, match="overflow"):
            RequestQueue(overflow="drop-newest")
        with pytest.raises(ValueError, match="min_cost"):
            RequestQueue(min_cost=-1.0)

    def test_pop_batch_rejects_bad_parameters(self):
        queue = RequestQueue()
        with pytest.raises(ValueError, match="max_items"):
            queue.pop_batch(0, 0.1)
        with pytest.raises(ValueError, match="max_wait"):
            queue.pop_batch(1, -0.1)

    def test_closed_queue_refuses_put_and_signals_pop(self, items):
        queue = RequestQueue()
        queue.put(request_for(items[0]))
        leftovers = queue.close()
        assert [r.item.item_id for r in leftovers] == [items[0].item_id]
        with pytest.raises(ServiceStopped):
            queue.put(request_for(items[1]))
        assert queue.pop_batch(4, 0.0) == ([], [], None)
