"""Shared-memory transport: ring mechanics, codecs, fallbacks, telemetry.

The fast path must be an *optimization only*: every test that exercises a
fallback (tiny slots, full ring, non-conforming records, pickle-only
mode) also asserts the traces still match the serial reference.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.engine import LabelingEngine, ProcessPoolBackend, SlotRing
from repro.engine.shm import (
    decode_records,
    decode_traces,
    encode_records,
    encode_traces,
)
from repro.scheduling.deadline import CostQGreedyScheduler
from repro.scheduling.qgreedy import AgentPredictor, OraclePredictor
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import ItemRecord


@pytest.fixture(scope="module")
def predictor(trained, zoo):
    return AgentPredictor(trained.agent, len(zoo))


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:12]


def engine_for(zoo, predictor, world_config, backend):
    return LabelingEngine(zoo, predictor, world_config, backend=backend)


def assert_same_traces(got, ref):
    assert len(got) == len(ref)
    for g, r in zip(got, ref):
        assert g.item_id == r.item_id
        assert g.trace.executions == r.trace.executions


class TestSlotRing:
    def test_acquire_until_full_then_release_reopens(self):
        ring = SlotRing.create(slots=3, slot_bytes=32)
        try:
            taken = [ring.acquire() for _ in range(3)]
            assert sorted(taken) == [0, 1, 2]
            assert ring.acquire() is None  # full
            ring.release(taken[1])
            assert not ring.held(taken[1])
            assert ring.acquire() == taken[1]
        finally:
            ring.close()
            ring.unlink()

    def test_rotation_hint_spreads_slots(self):
        # Acquire/release cycles should walk the ring, not hammer slot 0.
        ring = SlotRing.create(slots=4, slot_bytes=32)
        try:
            seen = []
            for _ in range(8):
                slot = ring.acquire()
                seen.append(slot)
                ring.release(slot)
            assert seen == [0, 1, 2, 3, 0, 1, 2, 3]
        finally:
            ring.close()
            ring.unlink()

    def test_write_view_round_trip(self):
        ring = SlotRing.create(slots=2, slot_bytes=64)
        try:
            slot = ring.acquire()
            payload = bytes(range(48))
            length = ring.write(slot, payload)
            assert bytes(ring.view(slot, length)) == payload
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_payload_rejected(self):
        ring = SlotRing.create(slots=1, slot_bytes=16)
        try:
            slot = ring.acquire()
            with pytest.raises(ValueError, match="exceeds slot size"):
                ring.write(slot, b"x" * 17)
            with pytest.raises(ValueError, match="byte slot"):
                ring.view(slot, 17)
        finally:
            ring.close()
            ring.unlink()

    def test_second_handle_sees_state_and_payload(self):
        # A same-process attachment (untrack=False, as tests must) reads
        # what the owner wrote, and its release is visible to the owner.
        ring = SlotRing.create(slots=2, slot_bytes=32)
        other = None
        try:
            slot = ring.acquire()
            ring.write(slot, b"hello")
            other = SlotRing.attach(
                ring.name, ring.slots, ring.slot_bytes, untrack=False
            )
            assert other.held(slot)
            assert bytes(other.view(slot, 5)) == b"hello"
            other.release(slot)
            assert not ring.held(slot)
        finally:
            if other is not None:
                other.close()
            ring.close()
            ring.unlink()

    def test_release_after_close_is_noop(self):
        # A teardown racing a late chunk release must not raise.
        ring = SlotRing.create(slots=1, slot_bytes=8)
        slot = ring.acquire()
        ring.close()
        ring.release(slot)  # closed ring: silently ignored
        ring.unlink()

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SlotRing.create(slots=0, slot_bytes=8)
        with pytest.raises(ValueError):
            SlotRing.create(slots=1, slot_bytes=0)


class TestRecordCodec:
    def test_round_trip_preserves_scheduling_surface(self, truth, zoo, items):
        records = [truth.record(item.item_id) for item in items[:5]]
        payload = encode_records(records)
        assert payload is not None
        decoded = decode_records(payload, zoo)
        assert len(decoded) == len(records)
        for want, got in zip(records, decoded):
            assert got.item.item_id == want.item.item_id
            assert got.total_value == want.total_value
            np.testing.assert_array_equal(got.solo_values, want.solo_values)
            np.testing.assert_array_equal(
                got.best_confidence, want.best_confidence
            )
            for w_ids, g_ids in zip(want.valuable_ids, got.valuable_ids):
                np.testing.assert_array_equal(g_ids, w_ids)
            for w_confs, g_confs in zip(want.valuable_confs, got.valuable_confs):
                np.testing.assert_array_equal(g_confs, w_confs)

    def test_decoded_arrays_are_readonly_views(self, truth, zoo, items):
        payload = encode_records([truth.record(items[0].item_id)])
        [decoded] = decode_records(payload, zoo)
        for array in (decoded.solo_values, decoded.best_confidence):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 1.0

    def test_empty_shard_is_non_conforming(self):
        assert encode_records([]) is None

    def test_subclassed_record_falls_back(self, truth, items):
        class CustomRecord(ItemRecord):
            pass

        record = truth.record(items[0].item_id)
        custom = CustomRecord(**dataclasses.asdict(record))
        assert encode_records([custom]) is None
        # A conforming record in the same shard does not rescue it.
        assert encode_records([record, custom]) is None

    def test_inconsistent_shapes_fall_back(self, truth, items):
        first = truth.record(items[0].item_id)
        truncated = dataclasses.replace(
            first, best_confidence=first.best_confidence[:-1]
        )
        assert encode_records([first, truncated]) is None

    def test_zoo_mismatch_rejected_on_decode(self, truth, zoo, items):
        payload = encode_records([truth.record(items[0].item_id)])
        subset = ModelZoo(zoo.models[:5], zoo.space)
        with pytest.raises(ValueError, match="zoo has"):
            decode_records(payload, subset)

    def test_adopted_decoded_records_schedule_identically(
        self, truth, zoo, world_config, items
    ):
        from repro.zoo.oracle import GroundTruth

        ids = [item.item_id for item in items[:4]]
        payload = encode_records([truth.record(i) for i in ids])
        empty = GroundTruth(zoo, [], world_config)
        adopted = empty.adopt(decode_records(payload, zoo))
        try:
            scheduler = CostQGreedyScheduler(OraclePredictor(empty))
            reference = CostQGreedyScheduler(OraclePredictor(truth))
            for item_id in ids:
                got = scheduler.schedule(empty, item_id, 0.5)
                want = reference.schedule(truth, item_id, 0.5)
                assert got.executions == want.executions
        finally:
            empty.release_many(adopted)


class TestTraceCodec:
    def test_round_trip(self, truth, items):
        scheduler = CostQGreedyScheduler(OraclePredictor(truth))
        ids = [item.item_id for item in items[:6]]
        traces = [scheduler.schedule(truth, i, 0.4) for i in ids]
        decoded = decode_traces(encode_traces(traces), ids, truth.zoo.names)
        for want, got in zip(traces, decoded):
            assert got.item_id == want.item_id
            assert got.total_value == want.total_value
            assert got.executions == want.executions

    def test_empty_trace_round_trips(self, truth, items):
        scheduler = CostQGreedyScheduler(OraclePredictor(truth))
        ids = [items[0].item_id]
        traces = [scheduler.schedule(truth, ids[0], 0.0)]  # nothing executes
        [decoded] = decode_traces(encode_traces(traces), ids, truth.zoo.names)
        assert decoded.executions == []

    def test_id_count_mismatch_rejected(self, truth, items):
        scheduler = CostQGreedyScheduler(OraclePredictor(truth))
        ids = [item.item_id for item in items[:2]]
        payload = encode_traces([scheduler.schedule(truth, i, 0.4) for i in ids])
        with pytest.raises(ValueError, match="item ids were given"):
            decode_traces(payload, ids[:1], truth.zoo.names)


class TestBackendTransport:
    def _two_batches_with_deltas(self, zoo, world_config, predictor, backend, items):
        """Label two disjoint batches on one shared truth.

        The pool's world snapshot is captured during the first batch, so
        the second batch's records are post-snapshot and must travel as
        chunk deltas.
        """
        from repro.zoo.oracle import GroundTruth

        shared = GroundTruth(zoo, [], world_config)
        engine = engine_for(zoo, predictor, world_config, backend)
        first = engine.label_batch(items[:6], truth=shared)
        second = engine.label_batch(items[6:12], truth=shared)
        return first + second

    def test_shm_fast_path_used_for_deltas_and_results(
        self, zoo, world_config, predictor, truth, items
    ):
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        with ProcessPoolBackend(max_workers=2) as backend:
            got = self._two_batches_with_deltas(
                zoo, world_config, predictor, backend, items
            )
            transport = backend.chunk_stats["transport"]
        assert_same_traces(got, ref)
        assert transport.get("delta_shm", 0) > 0
        assert transport.get("result_shm", 0) > 0
        assert transport.get("delta_pickle", 0) == 0
        assert transport.get("result_pickle", 0) == 0

    def test_tiny_slots_fall_back_to_pickle_without_breaking_parity(
        self, zoo, world_config, predictor, truth, items
    ):
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        with ProcessPoolBackend(max_workers=2, slot_bytes=64) as backend:
            got = self._two_batches_with_deltas(
                zoo, world_config, predictor, backend, items
            )
            transport = backend.chunk_stats["transport"]
        assert_same_traces(got, ref)
        assert transport.get("delta_pickle", 0) > 0  # oversized record shard
        assert transport.get("result_pickle", 0) > 0  # oversized trace shard
        assert transport.get("delta_shm", 0) == 0
        assert transport.get("result_shm", 0) == 0

    def test_pickle_transport_mode(
        self, zoo, world_config, predictor, truth, items
    ):
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        with ProcessPoolBackend(max_workers=2, transport="pickle") as backend:
            got = engine_for(zoo, predictor, world_config, backend).label_batch(
                items, truth=truth
            )
            assert backend._delta_ring is None  # no rings in pickle mode
            assert backend.chunk_stats["transport"] == {}
        assert_same_traces(got, ref)

    def test_unvectorized_workers_keep_parity(
        self, zoo, world_config, predictor, truth, items
    ):
        # vectorized=False is the PR-baseline measurement mode: workers
        # run the serial per-item loop, traces must be unchanged.
        ref = engine_for(zoo, predictor, world_config, "serial").label_batch(
            items, truth=truth
        )
        with ProcessPoolBackend(max_workers=2, vectorized=False) as backend:
            got = engine_for(zoo, predictor, world_config, backend).label_batch(
                items, truth=truth
            )
        assert_same_traces(got, ref)

    def test_rings_unlinked_on_close(
        self, zoo, world_config, predictor, truth, items
    ):
        backend = ProcessPoolBackend(max_workers=2)
        with backend:
            engine_for(zoo, predictor, world_config, backend).label_batch(
                items, truth=truth
            )
            names = [backend._delta_ring.name, backend._result_ring.name]
        assert backend._delta_ring is None
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_adaptive_chunking_telemetry(
        self, zoo, world_config, predictor, truth, items
    ):
        with ProcessPoolBackend(
            max_workers=2, target_chunk_s=0.005
        ) as backend:
            engine = engine_for(zoo, predictor, world_config, backend)
            engine.label_batch(items, truth=truth)
            first = backend.chunk_stats
            engine.label_batch(items, truth=truth)
            second = backend.chunk_stats
        assert first["chunks"] >= 2
        assert first["items"] == len(items)
        assert first["ewma_item_s"] is not None and first["ewma_item_s"] > 0
        # The second job sizes its chunks from the telemetry of the first.
        assert second["last_chunk_size"] is not None
        assert 1 <= second["last_chunk_size"] <= len(items)
        assert second["items"] == 2 * len(items)

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="transport"):
            ProcessPoolBackend(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="target_chunk_s"):
            ProcessPoolBackend(target_chunk_s=0.0)
        with pytest.raises(ValueError, match="ring_slots"):
            ProcessPoolBackend(ring_slots=0)
        with pytest.raises(ValueError, match="slot_bytes"):
            ProcessPoolBackend(slot_bytes=0)
