"""LabelingSpec: eager validation, regime derivation, grouping, resolution."""

import pytest

from repro import LabelingSpec
from repro.spec import REGIMES, validate_constraints


class TestValidation:
    """Constraints are rejected once, eagerly, at the API boundary."""

    def test_negative_deadline(self):
        with pytest.raises(ValueError, match="deadline must be non-negative"):
            LabelingSpec(deadline=-0.1)

    def test_negative_memory_budget(self):
        with pytest.raises(ValueError, match="memory_budget must be non-negative"):
            LabelingSpec(deadline=0.5, memory_budget=-1.0)

    def test_memory_budget_requires_deadline(self):
        with pytest.raises(ValueError, match="requires a deadline"):
            LabelingSpec(memory_budget=8000.0)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_max_models_below_one(self, bad):
        with pytest.raises(ValueError, match="max_models"):
            LabelingSpec(max_models=bad)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            LabelingSpec(policy="round_robin")

    def test_policy_missing_required_constraints(self):
        with pytest.raises(ValueError, match="requires a deadline"):
            LabelingSpec(policy="deadline")
        with pytest.raises(ValueError, match="memory_budget"):
            LabelingSpec(deadline=0.5, policy="deadline_memory")

    def test_zero_deadline_is_legal(self):
        # a zero budget schedules nothing but is not an error (matches the
        # schedulers' boundary semantics)
        assert LabelingSpec(deadline=0.0).regime == "deadline"

    def test_with_revalidates(self):
        spec = LabelingSpec(deadline=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            spec.with_(deadline=-1.0)
        assert spec.with_(priority=2).priority == 2

    def test_legacy_validate_constraints_wrapper(self):
        validate_constraints(0.5, 8000.0)
        with pytest.raises(ValueError, match="requires a deadline"):
            validate_constraints(None, 8000.0)


class TestRegime:
    def test_derived_from_constraints(self):
        assert LabelingSpec().regime == "qgreedy"
        assert LabelingSpec(max_models=4).regime == "qgreedy"
        assert LabelingSpec(deadline=0.5).regime == "deadline"
        assert (
            LabelingSpec(deadline=0.5, memory_budget=8000.0).regime
            == "deadline_memory"
        )

    def test_policy_overrides_derivation(self):
        spec = LabelingSpec(deadline=0.5, policy="qgreedy")
        assert spec.regime == "qgreedy"
        pinned = LabelingSpec(deadline=0.5, memory_budget=8000.0, policy="deadline")
        assert pinned.regime == "deadline"

    def test_every_regime_name_is_legal_policy(self):
        for regime in REGIMES:
            spec = LabelingSpec(deadline=0.5, memory_budget=8000.0, policy=regime)
            assert spec.regime == regime


class TestBatchKey:
    def test_same_constraints_group(self):
        assert LabelingSpec(deadline=0.5).batch_key == LabelingSpec(0.5).batch_key

    def test_different_regimes_split(self):
        keys = {
            LabelingSpec().batch_key,
            LabelingSpec(deadline=0.5).batch_key,
            LabelingSpec(deadline=0.5, memory_budget=8000.0).batch_key,
        }
        assert len(keys) == 3

    def test_different_deadline_classes_split(self):
        assert (
            LabelingSpec(deadline=0.3).batch_key
            != LabelingSpec(deadline=0.5).batch_key
        )

    def test_priority_is_not_part_of_the_key(self):
        # priorities order admission; they do not change scheduling, so
        # mixed-priority requests may share a batch
        assert (
            LabelingSpec(deadline=0.5, priority=0).batch_key
            == LabelingSpec(deadline=0.5, priority=9).batch_key
        )

    def test_irrelevant_constraints_excluded(self):
        # a qgreedy-policy spec ignores its deadline, so two of them with
        # different (ignored) deadlines still batch together
        assert (
            LabelingSpec(deadline=0.3, policy="qgreedy").batch_key
            == LabelingSpec(deadline=0.9, policy="qgreedy").batch_key
        )
        # but max_models matters in the qgreedy regime
        assert (
            LabelingSpec(max_models=3).batch_key != LabelingSpec(max_models=4).batch_key
        )

    def test_keys_are_hashable_and_stable(self):
        spec = LabelingSpec(deadline=0.5, memory_budget=8000.0)
        assert hash(spec.batch_key) == hash(spec.with_(priority=5).batch_key)

    def test_tenant_is_not_part_of_the_key(self):
        # tenancy is a fairness concern (the hierarchical queue's outer
        # level), not a scheduling constraint: two tenants with the same
        # constraints share a regime bucket
        assert (
            LabelingSpec(deadline=0.5, tenant="a").batch_key
            == LabelingSpec(deadline=0.5, tenant="b").batch_key
        )


class TestTenant:
    def test_tenant_defaults_to_none_and_resolves(self):
        assert LabelingSpec().tenant is None
        assert LabelingSpec.resolve(None, tenant="acme").tenant == "acme"

    def test_cache_key_is_tenant_partitioned(self):
        # unlike batch_key, the cache key MUST include the tenant: cached
        # labels are tenant-visible state and may not leak across tenants
        a = LabelingSpec(deadline=0.5, tenant="a").cache_key("item-1")
        b = LabelingSpec(deadline=0.5, tenant="b").cache_key("item-1")
        anon = LabelingSpec(deadline=0.5).cache_key("item-1")
        assert len({a, b, anon}) == 3

    def test_same_tenant_same_constraints_share_cache(self):
        assert LabelingSpec(deadline=0.5, tenant="a").cache_key(
            "item-1"
        ) == LabelingSpec(deadline=0.5, tenant="a").cache_key("item-1")


class TestResolve:
    def test_kwargs_build_a_spec(self):
        spec = LabelingSpec.resolve(None, deadline=0.5, max_models=3)
        assert spec == LabelingSpec(deadline=0.5, max_models=3)

    def test_no_arguments_is_unconstrained(self):
        assert LabelingSpec.resolve(None) == LabelingSpec()

    def test_spec_passes_through_unchanged(self):
        spec = LabelingSpec(deadline=0.5)
        assert LabelingSpec.resolve(spec) is spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.5},
            {"memory_budget": 8000.0},
            {"max_models": 3},
            {"priority": 1},
            {"policy": "qgreedy"},
        ],
    )
    def test_spec_plus_any_kwarg_conflicts(self, kwargs):
        spec = LabelingSpec(deadline=0.5, memory_budget=8000.0)
        with pytest.raises(ValueError, match="not both"):
            LabelingSpec.resolve(spec, **kwargs)

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError, match="LabelingSpec"):
            LabelingSpec.resolve({"deadline": 0.5})

    def test_kwargs_are_validated(self):
        with pytest.raises(ValueError, match="requires a deadline"):
            LabelingSpec.resolve(None, memory_budget=1.0)


class TestFrameworkSpecParity:
    """spec= and legacy kwargs are the same call, end to end."""

    @pytest.fixture(scope="class")
    def scheduler(self, zoo, world_config, trained):
        from repro.core.framework import AdaptiveModelScheduler

        return AdaptiveModelScheduler(zoo, world_config, agent=trained.agent)

    def test_label_spec_equals_kwargs(self, scheduler, splits, truth):
        _, test = splits
        ref = scheduler.label(test[0], deadline=0.4, truth=truth)
        got = scheduler.label(test[0], LabelingSpec(deadline=0.4), truth=truth)
        assert got.trace.executions == ref.trace.executions

    def test_label_conflict_raises(self, scheduler, splits, truth):
        _, test = splits
        with pytest.raises(ValueError, match="not both"):
            scheduler.label(
                test[0], LabelingSpec(deadline=0.4), deadline=0.4, truth=truth
            )

    def test_label_stream_conflict_raises_eagerly(self, scheduler, splits, truth):
        _, test = splits
        # no iteration: the conflict must surface at call time
        with pytest.raises(ValueError, match="not both"):
            scheduler.label_stream(
                test[:5], LabelingSpec(deadline=0.4), deadline=0.4, truth=truth
            )

    def test_invalid_constraints_raise_before_scheduling(self, scheduler, splits):
        _, test = splits
        with pytest.raises(ValueError, match="max_models"):
            scheduler.label(test[0], max_models=0)
        with pytest.raises(ValueError, match="non-negative"):
            scheduler.label_batch(test.items[:2], deadline=-0.5)
