"""The unified submit family: wait= modes and the deprecated shims."""

import asyncio
from concurrent.futures import Future

import pytest

from repro.engine import LabelingEngine
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import LabelingService, QueueFull


@pytest.fixture(scope="module")
def predictor(zoo, space):
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return AgentPredictor(agent, len(zoo))


@pytest.fixture(scope="module")
def engine(zoo, predictor, world_config):
    return LabelingEngine(zoo, predictor, world_config)


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:16]


class TestWaitModes:
    def test_invalid_wait_mode(self, engine, truth, items):
        service = LabelingService(engine, truth=truth)
        with pytest.raises(ValueError, match="wait must be"):
            service.submit(items[0], wait="eventually")
        with pytest.raises(ValueError, match="wait must be"):
            service.submit_many(items[:2], wait="eventually")

    def test_block_returns_concurrent_future(self, engine, truth, items):
        service = LabelingService(engine, batch_size=4, truth=truth)
        with service:
            future = service.submit(items[0])
            assert isinstance(future, Future)
            result = future.result(timeout=30)
            service.drain()
        assert result.item_id == items[0].item_id

    def test_nowait_rejects_immediately_despite_block_policy(
        self, engine, truth, items
    ):
        # overflow="block" would park the caller; wait="nowait" must not.
        service = LabelingService(
            engine, truth=truth, max_depth=2, overflow="block"
        )
        service.submit(items[0], wait="nowait")
        service.submit(items[1], wait="nowait")
        with pytest.raises(QueueFull):
            service.submit(items[2], wait="nowait")
        with service:
            pass  # drain the two admitted requests
        assert service.snapshot().counters["rejected"] == 1

    def test_legacy_nowait_flag_folds_into_nowait_mode(
        self, engine, truth, items
    ):
        service = LabelingService(
            engine, truth=truth, max_depth=1, overflow="block"
        )
        service.submit(items[0], nowait=True)
        with pytest.raises(QueueFull):
            service.submit(items[1], nowait=True)
        with service:
            pass

    def test_async_returns_awaitables_on_the_calling_loop(
        self, engine, truth, items
    ):
        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                one = service.submit(items[0], wait="async")
                assert isinstance(one, asyncio.Future)
                many = service.submit_many(items[1:5], wait="async")
                assert all(isinstance(f, asyncio.Future) for f in many)
                results = await asyncio.gather(one, *many)
                service.drain()
            return results

        results = asyncio.run(run())
        assert [r.item_id for r in results] == [i.item_id for i in items[:5]]

    def test_async_admission_never_blocks(self, engine, truth, items):
        # A full queue fails the futures instead of parking the loop.
        async def run():
            service = LabelingService(
                engine, batch_size=4, truth=truth, max_depth=2, overflow="block"
            )
            # Submit before the workers start so the queue cannot drain:
            # exactly max_depth admissions, the rest must fail instantly.
            futures = service.submit_many(items[:6], wait="async")
            with service:
                outcomes = await asyncio.gather(*futures, return_exceptions=True)
                service.drain()
            return outcomes

        outcomes = asyncio.run(run())
        assert sum(isinstance(o, QueueFull) for o in outcomes) == 4

    def test_submit_many_modes_return_input_ordered_lists(
        self, engine, truth, items
    ):
        service = LabelingService(engine, batch_size=4, truth=truth)
        with service:
            futures = service.submit_many(items[:8], wait="nowait")
            results = [f.result(timeout=30) for f in futures]
            service.drain()
        assert [r.item_id for r in results] == [i.item_id for i in items[:8]]


class TestDeprecatedShims:
    """The four old async names: warn, but pin the exact old behavior."""

    @pytest.mark.parametrize(
        "name",
        [
            "submit_async",
            "submit_nowait_async",
            "submit_many_async",
            "submit_many_nowait_async",
        ],
    )
    def test_shims_warn(self, engine, truth, items, name):
        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                with pytest.warns(DeprecationWarning, match=name):
                    out = getattr(service, name)(
                        items if name.startswith("submit_many") else items[0]
                    )
                futures = out if isinstance(out, list) else [out]
                results = await asyncio.gather(*futures)
                service.drain()
            return results

        results = asyncio.run(run())
        expected = items if name.startswith("submit_many") else items[:1]
        assert [r.item_id for r in results] == [i.item_id for i in expected]

    def test_submit_async_keeps_blocking_admission(self, engine, truth, items):
        # The old submit_async parked on a full queue until space freed —
        # distinct from wait="async", which rejects. The shim must keep
        # doing so (the queue drains once the service is running).
        async def run():
            service = LabelingService(
                engine, batch_size=2, max_wait=0.005, truth=truth, max_depth=2
            )
            with service:
                with pytest.warns(DeprecationWarning):
                    futures = [
                        service.submit_async(item, timeout=10.0)
                        for item in items[:8]
                    ]
                results = await asyncio.gather(*futures)
                service.drain()
            return results

        results = asyncio.run(run())
        assert len(results) == 8
