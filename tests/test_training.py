"""Training loop: convergence signals, END action effect, theta effect."""

import numpy as np
import pytest

from repro.core.reward import RewardConfig
from repro.rl.training import train_agent
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.qgreedy import AgentPredictor, QGreedyPolicy
from repro.scheduling.random_policy import RandomPolicy
from repro.analysis.metrics import average_cost_curves


class TestTrainingLoop:
    def test_result_bookkeeping(self, trained, train_config):
        assert len(trained.episode_returns) == 250
        assert len(trained.episode_lengths) == 250
        assert trained.total_steps == sum(trained.episode_lengths)
        assert len(trained.losses) > 0

    def test_returns_improve(self, trained):
        """Late-training returns beat early exploration returns."""
        early = float(np.mean(trained.episode_returns[:25]))
        late = float(np.mean(trained.episode_returns[-25:]))
        assert late > early

    def test_smoothed_returns_shape(self, trained):
        smoothed = trained.smoothed_returns(window=20)
        assert len(smoothed) == len(trained.episode_returns) - 19

    def test_trained_agent_beats_random(
        self, trained, truth, test_item_ids, zoo
    ):
        """The core claim at mini scale: agent < random in cost @0.8 recall."""
        predictor = AgentPredictor(trained.agent, len(zoo))
        agent_traces = [
            run_ordering_policy(QGreedyPolicy(predictor), truth, i)
            for i in test_item_ids
        ]
        random_traces = [
            run_ordering_policy(RandomPolicy(seed=5), truth, i)
            for i in test_item_ids
        ]
        agent_curve = average_cost_curves("agent", agent_traces)
        random_curve = average_cost_curves("random", random_traces)
        assert agent_curve.at(0.8)[0] < random_curve.at(0.8)[0]
        assert agent_curve.at(0.8)[1] < random_curve.at(0.8)[1]

    @pytest.mark.parametrize("algo", ["dqn", "double_dqn", "deep_sarsa"])
    def test_all_algorithms_train(self, truth, splits, train_config, algo):
        train, _ = splits
        result = train_agent(
            algo,
            truth,
            [i.item_id for i in train][:20],
            config=train_config.with_(episodes=40),
        )
        assert result.total_steps > 0
        assert result.agent.algo == algo

    def test_no_end_action_episodes_run_all_models(
        self, truth, splits, train_config, zoo
    ):
        train, _ = splits
        result = train_agent(
            "dqn",
            truth,
            [i.item_id for i in train][:10],
            config=train_config.with_(episodes=15, use_end_action=False),
        )
        # without END, every episode executes the full zoo
        assert all(length == len(zoo) for length in result.episode_lengths)

    def test_end_action_shortens_episodes(self, truth, splits, train_config, zoo):
        """§IV-B: END lets converged agents stop early."""
        train, _ = splits
        result = train_agent(
            "dueling_dqn",
            truth,
            [i.item_id for i in train],
            config=train_config.with_(episodes=200),
        )
        late_lengths = result.episode_lengths[-40:]
        assert float(np.mean(late_lengths)) < len(zoo)

    def test_deterministic_given_seed(self, truth, splits, train_config):
        train, _ = splits
        ids = [i.item_id for i in train][:15]
        r1 = train_agent("dqn", truth, ids, train_config.with_(episodes=20))
        r2 = train_agent("dqn", truth, ids, train_config.with_(episodes=20))
        assert r1.episode_returns == r2.episode_returns
        obs = np.zeros(r1.agent.obs_dim)
        assert np.allclose(r1.agent.q_values(obs), r2.agent.q_values(obs))


class TestThetaTraining:
    def test_theta_shifts_model_earlier(
        self, truth, splits, train_config, zoo, test_item_ids
    ):
        """§VI-E: raising a model's theta pulls it forward in the order."""
        train, _ = splits
        ids = [i.item_id for i in train]
        target = "mini_face_det"
        target_index = zoo.index_of(target)

        def avg_position(reward_config):
            result = train_agent(
                "dueling_dqn",
                truth,
                ids,
                config=train_config.with_(episodes=250),
                reward_config=reward_config,
            )
            predictor = AgentPredictor(result.agent, len(zoo))
            positions = []
            for item_id in test_item_ids[:25]:
                trace = run_ordering_policy(
                    QGreedyPolicy(predictor), truth, item_id
                )
                for pos, e in enumerate(trace.executions, start=1):
                    if e.model_index == target_index:
                        positions.append(pos)
                        break
            return float(np.mean(positions))

        base = avg_position(None)
        boosted = avg_position(RewardConfig(theta={target: 10.0}))
        assert boosted < base
