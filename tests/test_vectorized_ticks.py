"""Vectorized dispatch ticks must replay their serial counterparts exactly.

Every regime's ``schedule_batch`` promises trace *parity* with the
per-item serial loop: round ``k`` of the batch is step ``k`` of each
serial run, and the masked argmax replays serial selection including
first-index tie-breaking.  These tests enforce that promise trace-for-
trace — executions compared field-exact — across budgets, predictors,
and deliberately tie-heavy Q surfaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchedBackend, LabelingJob, SerialBackend
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.deadline import CostQGreedyScheduler
from repro.scheduling.deadline_memory import MemoryDeadlineScheduler
from repro.scheduling.qgreedy import (
    AgentPredictor,
    OraclePredictor,
    QGreedyPolicy,
    QValuePredictor,
)
from repro.spec import LabelingSpec


@pytest.fixture(scope="module")
def agent_predictor(trained, zoo):
    return AgentPredictor(trained.agent, len(zoo))


@pytest.fixture(scope="module")
def oracle_predictor(truth):
    return OraclePredictor(truth)


@pytest.fixture(scope="module")
def items(test_item_ids):
    return test_item_ids[:16]


def assert_traces_equal(batch, serial):
    assert len(batch) == len(serial)
    for got, want in zip(batch, serial):
        assert got.item_id == want.item_id
        assert got.total_value == want.total_value
        assert got.executions == want.executions


class ConstantPredictor(QValuePredictor):
    """Every model ties at the same Q — selection is pure tie-breaking."""

    def __init__(self, n_models: int, value: float = 1.0):
        self.n_models = n_models
        self.value = value

    def predict(self, state):
        return np.full(self.n_models, self.value)


class DuplicateMaxPredictor(QValuePredictor):
    """Two models share the running maximum at every step.

    Distinct sub-maximal values elsewhere make any deviation from
    first-index tie-breaking visible immediately.
    """

    def __init__(self, n_models: int, peaks=(2, 5)):
        values = np.linspace(0.1, 0.9, n_models)
        values[list(peaks)] = 7.0
        self.values = values

    def predict(self, state):
        return self.values.copy()


DEADLINES = (0.0, 0.05, 0.2, 0.35, 0.5, 2.0, 100.0)


class TestQGreedyBatchParity:
    @pytest.mark.parametrize("max_models", (None, 1, 3, 100))
    def test_matches_serial(self, truth, oracle_predictor, items, max_models):
        batch = QGreedyPolicy(oracle_predictor).schedule_batch(
            truth, items, max_models=max_models
        )
        serial = [
            run_ordering_policy(
                QGreedyPolicy(oracle_predictor), truth, i, max_models=max_models
            )
            for i in items
        ]
        assert_traces_equal(batch, serial)

    def test_matches_serial_with_agent(self, truth, agent_predictor, items):
        batch = QGreedyPolicy(agent_predictor).schedule_batch(
            truth, items, max_models=4
        )
        serial = [
            run_ordering_policy(
                QGreedyPolicy(agent_predictor), truth, i, max_models=4
            )
            for i in items
        ]
        assert_traces_equal(batch, serial)

    def test_empty_batch(self, truth, oracle_predictor):
        assert QGreedyPolicy(oracle_predictor).schedule_batch(truth, []) == []

    @pytest.mark.parametrize(
        "predictor_cls", (ConstantPredictor, DuplicateMaxPredictor)
    )
    def test_tied_q_values_break_ties_like_serial(
        self, truth, zoo, items, predictor_cls
    ):
        predictor = predictor_cls(len(zoo))
        batch = QGreedyPolicy(predictor).schedule_batch(truth, items)
        serial = [
            run_ordering_policy(QGreedyPolicy(predictor), truth, i) for i in items
        ]
        assert_traces_equal(batch, serial)


class TestDeadlineBatchParity:
    @pytest.mark.parametrize("deadline", DEADLINES)
    def test_matches_serial(self, truth, oracle_predictor, items, deadline):
        scheduler = CostQGreedyScheduler(oracle_predictor)
        batch = scheduler.schedule_batch(truth, items, deadline)
        serial = [scheduler.schedule(truth, i, deadline) for i in items]
        assert_traces_equal(batch, serial)

    @pytest.mark.parametrize("deadline", (0.2, 0.5))
    def test_matches_serial_with_agent(self, truth, agent_predictor, items, deadline):
        scheduler = CostQGreedyScheduler(agent_predictor)
        batch = scheduler.schedule_batch(truth, items, deadline)
        serial = [scheduler.schedule(truth, i, deadline) for i in items]
        assert_traces_equal(batch, serial)

    def test_tied_ratios_break_ties_like_serial(self, truth, zoo, items):
        # A constant Q makes the selection ratio Q/time — models sharing a
        # time tier tie, so the argmax must pick the first index like the
        # serial loop does.
        predictor = ConstantPredictor(len(zoo))
        scheduler = CostQGreedyScheduler(predictor)
        batch = scheduler.schedule_batch(truth, items, 0.5)
        serial = [scheduler.schedule(truth, i, 0.5) for i in items]
        assert_traces_equal(batch, serial)

    def test_zero_deadline_executes_nothing(self, truth, oracle_predictor, items):
        for trace in CostQGreedyScheduler(oracle_predictor).schedule_batch(
            truth, items, 0.0
        ):
            assert trace.n_executed == 0

    def test_negative_deadline_rejected(self, truth, oracle_predictor, items):
        with pytest.raises(ValueError):
            CostQGreedyScheduler(oracle_predictor).schedule_batch(
                truth, items, -0.1
            )


class TestMemoryDeadlineBatchParity:
    @pytest.mark.parametrize(
        "deadline,memory",
        [(0.0, 8000.0), (0.2, 500.0), (0.35, 2048.0), (0.5, 8000.0), (2.0, 100.0)],
    )
    def test_matches_serial(self, truth, oracle_predictor, items, deadline, memory):
        scheduler = MemoryDeadlineScheduler(oracle_predictor)
        batch = scheduler.schedule_batch(truth, items, deadline, memory)
        serial = [scheduler.schedule(truth, i, deadline, memory) for i in items]
        assert_traces_equal(batch, serial)

    def test_matches_serial_with_agent(self, truth, agent_predictor, items):
        scheduler = MemoryDeadlineScheduler(agent_predictor)
        batch = scheduler.schedule_batch(truth, items, 0.5, 4000.0)
        serial = [scheduler.schedule(truth, i, 0.5, 4000.0) for i in items]
        assert_traces_equal(batch, serial)

    def test_tied_areas_break_ties_like_serial(self, truth, zoo, items):
        predictor = DuplicateMaxPredictor(len(zoo))
        scheduler = MemoryDeadlineScheduler(predictor)
        batch = scheduler.schedule_batch(truth, items, 0.5, 4000.0)
        serial = [scheduler.schedule(truth, i, 0.5, 4000.0) for i in items]
        assert_traces_equal(batch, serial)

    def test_negative_budgets_rejected(self, truth, oracle_predictor, items):
        scheduler = MemoryDeadlineScheduler(oracle_predictor)
        with pytest.raises(ValueError):
            scheduler.schedule_batch(truth, items, -1.0, 100.0)
        with pytest.raises(ValueError):
            scheduler.schedule_batch(truth, items, 1.0, -100.0)


class TestBatchedBackendDelegation:
    """BatchedBackend now routes *every* regime through a vectorized tick."""

    SPECS = (
        LabelingSpec(),
        LabelingSpec(max_models=4),
        LabelingSpec(deadline=0.35),
        LabelingSpec(deadline=0.5, memory_budget=8000.0),
    )

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.regime)
    def test_matches_serial_backend(self, truth, oracle_predictor, items, spec):
        job = LabelingJob(truth=truth, item_ids=tuple(items), spec=spec)
        batch = BatchedBackend().run(job, oracle_predictor)
        serial = SerialBackend().run(job, oracle_predictor)
        assert_traces_equal(batch, serial)


class TestOraclePredictorCache:
    def test_lru_evicts_by_access_not_insertion(self, truth, items, monkeypatch):
        predictor = OraclePredictor(truth)
        monkeypatch.setattr(OraclePredictor, "CACHE_ITEMS", 2)
        a, b, c = items[:3]
        predictor._gain_matrix(a)
        predictor._gain_matrix(b)
        predictor._gain_matrix(a)  # refresh a: b is now least recently used
        predictor._gain_matrix(c)
        assert set(predictor._gain_matrices) == {a, c}

    def test_cache_bounded(self, truth, items, monkeypatch):
        predictor = OraclePredictor(truth)
        monkeypatch.setattr(OraclePredictor, "CACHE_ITEMS", 3)
        for item_id in items[:10]:
            predictor._gain_matrix(item_id)
        assert len(predictor._gain_matrices) == 3

    def test_concurrent_build_is_single_and_consistent(self, truth, items):
        import threading

        predictor = OraclePredictor(truth)
        builds = []
        original = truth.valuable

        def counting_valuable(item_id, index):
            builds.append(index)
            return original(item_id, index)

        predictor.truth = _ValuableCounter(truth, counting_valuable)
        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(slot):
            barrier.wait()
            results[slot] = predictor._gain_matrix(items[0])

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One build: each zoo model's valuable() read exactly once.
        assert len(builds) == len(truth.zoo)
        for matrix in results[1:]:
            assert matrix is results[0]

    def test_eviction_does_not_corrupt_predictions(self, truth, items, monkeypatch):
        monkeypatch.setattr(OraclePredictor, "CACHE_ITEMS", 1)
        small = OraclePredictor(truth)
        large = OraclePredictor(truth)
        scheduler_small = CostQGreedyScheduler(small)
        scheduler_large = CostQGreedyScheduler(large)
        batch = scheduler_small.schedule_batch(truth, items[:6], 0.5)
        serial = [scheduler_large.schedule(truth, i, 0.5) for i in items[:6]]
        assert_traces_equal(batch, serial)


class _ValuableCounter:
    """GroundTruth proxy that counts valuable() reads (build detection)."""

    def __init__(self, truth, counting_valuable):
        self._truth = truth
        self._valuable = counting_valuable

    def valuable(self, item_id, index):
        return self._valuable(item_id, index)

    def __getattr__(self, name):
        return getattr(self._truth, name)
