"""Vocabulary construction: Table I cardinalities and group coherence."""

import pytest

from repro.vocab import (
    ALL_TASKS,
    FULL_TASK_SIZES,
    MINI_TASK_SIZES,
    TASK_ACTION,
    TASK_DOG,
    TASK_FACE,
    TASK_OBJECT,
    TASK_PLACE,
    TASK_POSE,
    build_vocabulary,
)


class TestFullVocabulary:
    def test_total_is_1104(self):
        vocab = build_vocabulary("full")
        assert vocab.total_labels == 1104

    @pytest.mark.parametrize("task", ALL_TASKS)
    def test_task_cardinalities_match_table1(self, task):
        vocab = build_vocabulary("full")
        assert len(vocab.labels_for(task)) == FULL_TASK_SIZES[task]

    def test_ten_tasks(self):
        assert len(ALL_TASKS) == 10
        assert sum(FULL_TASK_SIZES.values()) == 1104

    def test_no_duplicate_labels_within_task(self):
        vocab = build_vocabulary("full")
        for task in ALL_TASKS:
            labels = vocab.labels_for(task)
            assert len(set(labels)) == len(labels), f"dupes in {task}"

    def test_coco_categories_present(self):
        vocab = build_vocabulary("full")
        objects = vocab.labels_for(TASK_OBJECT)
        for name in ("person", "dog", "cup", "tv_monitor", "bicycle"):
            assert name in objects

    def test_fig7_scene_labels_present(self):
        """Labels appearing in the paper's Fig. 7 narrative exist."""
        vocab = build_vocabulary("full")
        places = vocab.labels_for(TASK_PLACE)
        assert "pub" in places
        assert "beer_hall" in places
        actions = vocab.labels_for(TASK_ACTION)
        assert "drinking_beer" in actions
        dogs = vocab.labels_for(TASK_DOG)
        assert "akita" in dogs

    def test_pose_keypoints_are_coco17(self):
        vocab = build_vocabulary("full")
        pose = vocab.labels_for(TASK_POSE)
        assert len(pose) == 17
        assert "left_wrist" in pose and "right_wrist" in pose
        assert vocab.wrist_keypoints == {"left_wrist", "right_wrist"}

    def test_face_task_single_label(self):
        vocab = build_vocabulary("full")
        assert vocab.labels_for(TASK_FACE) == ("face",)


class TestGroups:
    def test_indoor_places_subset_of_places(self):
        vocab = build_vocabulary("full")
        places = set(vocab.labels_for(TASK_PLACE))
        assert vocab.indoor_places <= places
        assert "pub" in vocab.indoor_places
        assert "mountain" not in vocab.indoor_places

    def test_indoor_share_is_reasonable(self):
        vocab = build_vocabulary("full")
        share = len(vocab.indoor_places) / len(vocab.labels_for(TASK_PLACE))
        assert 0.3 < share < 0.6

    def test_sport_actions_subset(self):
        vocab = build_vocabulary("full")
        assert vocab.sport_actions <= set(vocab.labels_for(TASK_ACTION))
        assert "playing_basketball" in vocab.sport_actions

    def test_object_groups_are_disjoint_from_animals(self):
        vocab = build_vocabulary("full")
        assert not (vocab.animal_objects & vocab.household_objects)
        assert not (vocab.animal_objects & vocab.vehicle_objects)

    def test_all_group_members_exist(self):
        vocab = build_vocabulary("full")
        objects = set(vocab.labels_for(TASK_OBJECT))
        for group in (
            vocab.animal_objects,
            vocab.household_objects,
            vocab.vehicle_objects,
            vocab.sport_objects,
            vocab.food_objects,
            vocab.street_objects,
        ):
            assert group <= objects


class TestMiniVocabulary:
    def test_mini_sizes(self):
        vocab = build_vocabulary("mini")
        assert vocab.total_labels == sum(MINI_TASK_SIZES.values())
        for task in ALL_TASKS:
            assert len(vocab.labels_for(task)) == MINI_TASK_SIZES[task]

    def test_mini_keeps_key_labels(self):
        vocab = build_vocabulary("mini")
        assert "person" in vocab.labels_for(TASK_OBJECT)
        assert "dog" in vocab.labels_for(TASK_OBJECT)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown vocabulary scale"):
            build_vocabulary("giant")
