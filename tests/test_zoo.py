"""Model zoo: construction, costs, emission behaviour, determinism."""

import pytest

from repro.config import WorldConfig
from repro.zoo.builder import build_zoo
from repro.zoo.costs import FULL_ZOO_SPECS, MINI_ZOO_SPECS, calibrated_times, specs_for_scale
from repro.vocab import ALL_TASKS, TASK_DOG, TASK_FACE, TASK_POSE


class TestZooConstruction:
    def test_full_zoo_is_30_models_10_tasks(self):
        config = WorldConfig(vocab_scale="full")
        zoo = build_zoo(config)
        assert len(zoo) == 30
        assert {m.task for m in zoo} == set(ALL_TASKS)

    def test_full_zoo_total_time_calibrated(self):
        zoo = build_zoo(WorldConfig(vocab_scale="full"))
        assert zoo.total_time == pytest.approx(5.16, abs=1e-9)

    def test_custom_total_time(self):
        zoo = build_zoo(WorldConfig(vocab_scale="full", zoo_total_time=2.0))
        assert zoo.total_time == pytest.approx(2.0, abs=1e-9)

    def test_time_and_memory_ranges(self):
        """Table III: models span ~50-400ms and 500-8000MB."""
        zoo = build_zoo(WorldConfig(vocab_scale="full"))
        times_ms = zoo.times * 1000
        assert times_ms.min() >= 35
        assert times_ms.max() <= 420
        assert zoo.mems.min() >= 500
        assert zoo.mems.max() <= 8000

    def test_mini_zoo_one_model_per_task(self, zoo):
        assert len(zoo) == 10
        assert {m.task for m in zoo} == set(ALL_TASKS)

    def test_lookup_helpers(self, zoo):
        model = zoo[0]
        assert zoo.by_name(model.name) is model
        assert zoo.index_of(model.name) == 0
        assert model.name in zoo
        assert "nonexistent" not in zoo

    def test_models_for_task(self):
        zoo = build_zoo(WorldConfig(vocab_scale="full"))
        assert len(zoo.models_for_task(TASK_POSE)) == 3
        assert len(zoo.models_for_task(TASK_FACE)) == 3
        assert len(zoo.models_for_task(TASK_DOG)) == 3

    def test_specs_for_scale(self):
        assert specs_for_scale("full") is FULL_ZOO_SPECS
        assert specs_for_scale("mini") is MINI_ZOO_SPECS
        with pytest.raises(ValueError):
            specs_for_scale("huge")

    def test_calibration_preserves_ratios(self):
        times = calibrated_times(FULL_ZOO_SPECS, 5.16)
        s0, s1 = FULL_ZOO_SPECS[0], FULL_ZOO_SPECS[1]
        assert times[s0.name] / times[s1.name] == pytest.approx(
            s0.raw_time / s1.raw_time
        )


class TestEmission:
    def test_execution_is_deterministic(self, zoo, dataset):
        item = dataset[0]
        for model in zoo:
            out1 = model.execute(item)
            out2 = model.execute(item)
            assert out1 == out2

    def test_labels_belong_to_model_task(self, zoo, dataset, space):
        for item in dataset[:20]:
            for model in zoo:
                for label in model.execute(item).labels:
                    assert space.task_of(label.label_id) == model.task
                    assert space.name_of(label.label_id) == label.name

    def test_confidences_in_range(self, zoo, dataset):
        for item in dataset[:20]:
            for model in zoo:
                for label in model.execute(item).labels:
                    assert 0.0 < label.confidence < 1.0

    def test_pose_needs_person(self, zoo, dataset):
        pose = zoo.models_for_task(TASK_POSE)[0]
        for item in dataset[:40]:
            output = pose.execute(item)
            if not item.content.has_person:
                assert output.is_empty

    def test_face_detector_fires_on_faces(self, zoo, dataset, world_config):
        face = zoo.models_for_task(TASK_FACE)[0]
        hits = 0
        face_items = 0
        for item in dataset:
            strong_faces = [
                p for p in item.content.persons
                if p.face_visible and p.face_strength > 0.7
            ]
            if strong_faces:
                face_items += 1
                valuable = face.execute(item).valuable(
                    world_config.valuable_confidence
                )
                hits += bool(valuable)
        assert face_items > 0
        assert hits / face_items > 0.7

    def test_dog_classifier_mostly_silent_without_dogs(self, zoo, dataset):
        dog = zoo.models_for_task(TASK_DOG)[0]
        empty = 0
        total = 0
        for item in dataset:
            if item.content.dog_breed is None:
                total += 1
                if dog.execute(item).is_empty:
                    empty += 1
        assert empty / total > 0.8

    def test_junk_outputs_exist(self, zoo, dataset, world_config):
        """Fig. 1's low-confidence outputs must occur in the world."""
        threshold = world_config.valuable_confidence
        junk = 0
        for item in dataset[:60]:
            for model in zoo:
                output = model.execute(item)
                junk += sum(1 for l in output.labels if l.confidence < threshold)
        assert junk > 20

    def test_different_world_seed_changes_outputs(self, space, dataset):
        zoo_a = build_zoo(WorldConfig(vocab_scale="mini", seed=1), space)
        zoo_b = build_zoo(WorldConfig(vocab_scale="mini", seed=2), space)
        diff = 0
        for item in dataset[:20]:
            for ma, mb in zip(zoo_a, zoo_b):
                if ma.execute(item) != mb.execute(item):
                    diff += 1
        assert diff > 0


class TestModelOutput:
    def test_valuable_filtering(self, zoo, dataset, world_config):
        threshold = world_config.valuable_confidence
        for item in dataset[:20]:
            for model in zoo:
                output = model.execute(item)
                for label in output.valuable(threshold):
                    assert label.confidence >= threshold
                ids, confs = output.valuable_arrays(threshold)
                assert len(ids) == len(output.valuable(threshold))
                assert (confs >= threshold).all()

    def test_str_rendering(self, zoo, dataset):
        output = zoo[0].execute(dataset[0])
        text = str(output)
        assert zoo[0].name in text
